//! Criterion: format conversion costs — the preprocessing charged to
//! each optimization by the Table 4 amortization study, measured on
//! the host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use spmv_sparse::{gen, Csr, DecomposedCsr, DeltaCsr, EllHybrid};

fn bench_conversions(c: &mut Criterion) {
    let banded = gen::banded(60_000, 24, 0.9, 1).expect("valid");
    let circuit = gen::circuit(80_000, 4, 0.3, 6, 2).expect("valid");

    let mut group = c.benchmark_group("convert");
    group.throughput(Throughput::Elements(banded.nnz() as u64));
    group.bench_function("delta_compress/banded", |b| {
        b.iter(|| black_box(DeltaCsr::from_csr(black_box(&banded)).unwrap()));
    });
    group.bench_function("decompose/circuit", |b| {
        b.iter(|| black_box(DecomposedCsr::split(black_box(&circuit), 128).expect("threshold")));
    });
    group.bench_function("ell_hybrid/banded", |b| {
        let w = EllHybrid::auto_width(&banded);
        b.iter(|| black_box(EllHybrid::from_csr(black_box(&banded), w)));
    });
    group.bench_function("coo_to_csr/banded", |b| {
        let coo = banded.to_coo();
        b.iter(|| black_box(Csr::from_coo(black_box(&coo))));
    });
    group.bench_function("transpose/banded", |b| {
        b.iter(|| black_box(black_box(&banded).transpose()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conversions
}
criterion_main!(benches);
