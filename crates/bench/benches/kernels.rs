//! Criterion: real-host timing of every kernel variant on two
//! structurally opposite matrices (regular banded vs skewed circuit).
//! This is the host-measured counterpart of the simulated Fig. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use spmv_kernels::variant::{build_kernel, KernelVariant, Optimization};
use spmv_sparse::gen;

fn bench_variants(c: &mut Criterion) {
    let nthreads = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let cases = vec![
        ("banded", gen::banded(60_000, 24, 0.9, 1).expect("valid")),
        ("circuit", gen::circuit(80_000, 4, 0.3, 6, 2).expect("valid")),
        ("powerlaw", gen::powerlaw(60_000, 8, 1.9, 3).expect("valid")),
    ];
    for (name, a) in &cases {
        let mut group = c.benchmark_group(format!("spmv/{name}"));
        group.throughput(Throughput::Elements(a.nnz() as u64));
        let x = vec![1.0f64; a.ncols()];
        let mut y = vec![0.0f64; a.nrows()];

        let mut variants = vec![KernelVariant::BASELINE];
        variants.extend(Optimization::ALL.map(KernelVariant::single));
        for variant in variants {
            let built = build_kernel(a, variant, nthreads);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{variant}")),
                &built,
                |b, built| {
                    b.iter(|| {
                        built.kernel.run(black_box(&x), black_box(&mut y));
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_variants
}
criterion_main!(benches);
