//! Shadow atomics: an operational weak-memory model for the checker.
//!
//! Real atomics give the hardware (and the compiler) freedom the
//! type system cannot see; the checker replaces every atomic cell
//! with a *shadow location* that keeps the *whole modification
//! history* of the cell, and replaces every load with a
//! nondeterministic choice among the stores that the C11 coherence
//! and release/acquire rules still allow the loading thread to
//! observe. The exploration layer ([`crate::explore`]) then branches
//! on those choices exactly as it branches on thread scheduling.
//!
//! # The model (view-based release/acquire + relaxed)
//!
//! This is the promise-free operational fragment used by Loom and
//! CDSChecker-style checkers:
//!
//! * Every location carries its stores in **modification order**
//!   (`mo`), each tagged with the *message view* the store published.
//! * Every thread carries three views — maps from location to the
//!   newest mo-position it is aware of:
//!   * `cur` — what the thread has definitely observed; a load may
//!     never return a store older than `cur[loc]` (**coherence**).
//!   * `acq` — everything carried by messages the thread has read,
//!     released into `cur` by an **acquire fence**.
//!   * `rel` — a snapshot of `cur` taken at the last **release
//!     fence**; attached to subsequent *relaxed* stores so a later
//!     reader that synchronizes on such a store inherits it.
//! * A **release store** publishes the thread's full `cur` view; an
//!   **acquire load** joins the read store's message view into
//!   `cur`; a *relaxed* load joins it only into `acq` (visible after
//!   an acquire fence, not before).
//! * An RMW reads the mo-maximal store (atomicity: its write is
//!   mo-adjacent to the store it read) and its message additionally
//!   carries the read store's message (release-sequence behaviour).
//!
//! # What this does and does not cover
//!
//! Covered: store buffering (stale relaxed reads), message passing
//! via release/acquire, fence-based publication (the seqlock
//! pattern), coherence per location, RMW atomicity.
//!
//! Not covered: load buffering / out-of-thin-air shapes (po-earlier
//! loads never see po-later stores — same cut as Loom), `SeqCst`
//! total-order distinctions (the protocols under test use none), and
//! compiler transformations on the surrounding non-atomic code. See
//! DESIGN.md §10 for the fidelity discussion.

/// Memory ordering of a shadow operation. `SeqCst` is intentionally
/// absent: the modeled protocols never use it, and modeling it as
/// `AcqRel` would silently weaken any model that did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MOrd {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire` (loads, RMW read half).
    Acquire,
    /// `Ordering::Release` (stores, RMW write half).
    Release,
    /// `Ordering::AcqRel` (RMWs).
    AcqRel,
}

impl MOrd {
    fn acquires(self) -> bool {
        matches!(self, MOrd::Acquire | MOrd::AcqRel)
    }
    fn releases(self) -> bool {
        matches!(self, MOrd::Release | MOrd::AcqRel)
    }
}

/// A thread view: for each location (by id), one past the newest
/// modification-order position the thread knows about.
pub type View = Vec<usize>;

fn join(into: &mut View, from: &View) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

/// One store in a location's modification order.
#[derive(Debug, Clone)]
struct StoreMsg {
    value: u64,
    /// The view this store's message carries to acquiring readers.
    msg: View,
}

/// Handle to a shadow atomic location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc(pub(crate) usize);

/// Per-thread view state.
#[derive(Debug, Clone, Default)]
pub struct ThreadView {
    cur: View,
    acq: View,
    rel: View,
}

/// All shadow locations of one execution.
#[derive(Debug, Default)]
pub struct Memory {
    names: Vec<&'static str>,
    stores: Vec<Vec<StoreMsg>>,
    threads: Vec<ThreadView>,
}

impl Memory {
    /// Allocates a location initialized to `init`. The initial store
    /// carries an empty message and is visible to every thread.
    pub fn alloc(&mut self, name: &'static str, init: u64) -> Loc {
        let id = self.names.len();
        self.names.push(name);
        self.stores.push(vec![StoreMsg { value: init, msg: Vec::new() }]);
        for t in &mut self.threads {
            t.cur.push(0);
            t.acq.push(0);
            t.rel.push(0);
        }
        Loc(id)
    }

    /// Registers `n` thread view states (call once, after allocs may
    /// still happen — views auto-extend on alloc).
    pub fn set_threads(&mut self, n: usize) {
        let nlocs = self.names.len();
        self.threads = (0..n)
            .map(|_| ThreadView { cur: vec![0; nlocs], acq: vec![0; nlocs], rel: vec![0; nlocs] })
            .collect();
    }

    pub fn name(&self, loc: Loc) -> &'static str {
        self.names[loc.0]
    }

    /// Modification-order positions thread `tid` is allowed to read
    /// at `loc`: everything from its coherence floor to the newest
    /// store. Always non-empty.
    pub fn readable(&self, tid: usize, loc: Loc) -> std::ops::Range<usize> {
        let newest = self.stores[loc.0].len();
        let floor = self.threads[tid].cur[loc.0].min(newest - 1);
        floor..newest
    }

    /// Completes a load of mo-position `pos` (must come from
    /// [`readable`](Memory::readable)) with ordering `ord`; returns
    /// the value read.
    pub fn load_at(&mut self, tid: usize, loc: Loc, pos: usize, ord: MOrd) -> u64 {
        let store = self.stores[loc.0][pos].clone();
        let t = &mut self.threads[tid];
        t.cur[loc.0] = t.cur[loc.0].max(pos);
        join(&mut t.acq, &store.msg);
        t.acq[loc.0] = t.acq[loc.0].max(pos);
        if ord.acquires() {
            join(&mut t.cur, &store.msg);
        }
        store.value
    }

    /// Stores `value` with ordering `ord`; appends to modification
    /// order and advances the writer past its own store.
    pub fn store(&mut self, tid: usize, loc: Loc, value: u64, ord: MOrd) {
        let pos = self.stores[loc.0].len();
        let t = &mut self.threads[tid];
        t.cur[loc.0] = pos;
        t.acq[loc.0] = t.acq[loc.0].max(pos);
        let mut msg = if ord.releases() { t.cur.clone() } else { t.rel.clone() };
        if msg.len() < self.names.len() {
            msg.resize(self.names.len(), 0);
        }
        msg[loc.0] = pos;
        self.stores[loc.0].push(StoreMsg { value, msg });
    }

    /// Atomic read-modify-write: reads the mo-maximal store (RMW
    /// atomicity), applies `f`, and — if `f` returns a new value —
    /// appends it with a message that also carries the read store's
    /// message (release-sequence behaviour). Returns `(old, updated)`.
    pub fn rmw(
        &mut self,
        tid: usize,
        loc: Loc,
        ord: MOrd,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool) {
        let read_pos = self.stores[loc.0].len() - 1;
        let read = self.stores[loc.0][read_pos].clone();
        {
            let t = &mut self.threads[tid];
            t.cur[loc.0] = read_pos;
            join(&mut t.acq, &read.msg);
            t.acq[loc.0] = t.acq[loc.0].max(read_pos);
            if ord.acquires() {
                join(&mut t.cur, &read.msg);
            }
        }
        match f(read.value) {
            Some(new) => {
                let pos = self.stores[loc.0].len();
                let t = &mut self.threads[tid];
                t.cur[loc.0] = pos;
                t.acq[loc.0] = t.acq[loc.0].max(pos);
                let mut msg = if ord.releases() { t.cur.clone() } else { t.rel.clone() };
                if msg.len() < self.names.len() {
                    msg.resize(self.names.len(), 0);
                }
                msg[loc.0] = pos;
                join(&mut msg, &read.msg);
                self.stores[loc.0].push(StoreMsg { value: new, msg });
                (read.value, true)
            }
            None => (read.value, false),
        }
    }

    /// A memory fence with ordering `ord` on thread `tid`.
    pub fn fence(&mut self, tid: usize, ord: MOrd) {
        let t = &mut self.threads[tid];
        if ord.acquires() {
            let acq = t.acq.clone();
            join(&mut t.cur, &acq);
        }
        if ord.releases() {
            let cur = t.cur.clone();
            join(&mut t.rel, &cur);
        }
    }

    /// Joins `view` into thread `tid`'s current view (used by the
    /// shadow mutex, whose lock/unlock pair is sequentially
    /// consistent by construction).
    pub fn acquire_view(&mut self, tid: usize, view: &View) {
        join(&mut self.threads[tid].cur, view);
    }

    /// Snapshot of thread `tid`'s current view (for the shadow
    /// mutex's release edge).
    pub fn release_view(&mut self, tid: usize) -> View {
        let mut v = self.threads[tid].cur.clone();
        v.resize(self.names.len(), 0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(nthreads: usize) -> Memory {
        let mut m = Memory::default();
        m.set_threads(nthreads);
        m
    }

    #[test]
    fn relaxed_load_may_read_stale_then_coherence_pins_it() {
        let mut m = world(2);
        let x = m.alloc("x", 0);
        m.store(0, x, 1, MOrd::Relaxed);
        // Thread 1 has not synchronized: both the initial 0 and the 1
        // are readable.
        assert_eq!(m.readable(1, x), 0..2);
        assert_eq!(m.load_at(1, x, 1, MOrd::Relaxed), 1);
        // Having read the newer store, the older one is gone forever.
        assert_eq!(m.readable(1, x), 1..2);
    }

    #[test]
    fn release_acquire_publishes_payload() {
        let mut m = world(2);
        let data = m.alloc("data", 0);
        let flag = m.alloc("flag", 0);
        m.store(0, data, 42, MOrd::Relaxed);
        m.store(0, flag, 1, MOrd::Release);
        // Acquire-read the flag's new store: the data store becomes
        // the only readable one.
        assert_eq!(m.load_at(1, flag, 1, MOrd::Acquire), 1);
        assert_eq!(m.readable(1, data), 1..2);
        assert_eq!(m.load_at(1, data, 1, MOrd::Relaxed), 42);
    }

    #[test]
    fn relaxed_publication_leaves_payload_stale() {
        let mut m = world(2);
        let data = m.alloc("data", 0);
        let flag = m.alloc("flag", 0);
        m.store(0, data, 42, MOrd::Relaxed);
        m.store(0, flag, 1, MOrd::Relaxed); // no release: broken publish
        assert_eq!(m.load_at(1, flag, 1, MOrd::Acquire), 1);
        // The stale data value is still readable — the bug a model
        // built on this cell would have to catch.
        assert_eq!(m.readable(1, data), 0..2);
    }

    #[test]
    fn fence_pair_publishes_like_release_acquire() {
        let mut m = world(2);
        let data = m.alloc("data", 0);
        let flag = m.alloc("flag", 0);
        m.store(0, data, 7, MOrd::Relaxed);
        m.fence(0, MOrd::Release);
        m.store(0, flag, 1, MOrd::Relaxed);
        // Reader: relaxed flag load + acquire fence.
        assert_eq!(m.load_at(1, flag, 1, MOrd::Relaxed), 1);
        // Before the fence the data store is not pinned...
        assert_eq!(m.readable(1, data), 0..2);
        m.fence(1, MOrd::Acquire);
        // ...after it, it is.
        assert_eq!(m.readable(1, data), 1..2);
    }

    #[test]
    fn rmw_reads_mo_maximal_and_chains_messages() {
        let mut m = world(3);
        let c = m.alloc("c", 0);
        let (old, ok) = m.rmw(0, c, MOrd::Relaxed, |v| Some(v + 1));
        assert_eq!((old, ok), (0, true));
        let (old, ok) = m.rmw(1, c, MOrd::Relaxed, |v| Some(v + 1));
        assert_eq!((old, ok), (1, true));
        // A failed update still reads the newest value.
        let (old, ok) = m.rmw(2, c, MOrd::Relaxed, |_| None);
        assert_eq!((old, ok), (2, false));
    }

    #[test]
    fn mutex_views_transfer_everything() {
        let mut m = world(2);
        let data = m.alloc("data", 0);
        m.store(0, data, 9, MOrd::Relaxed);
        let released = m.release_view(0);
        m.acquire_view(1, &released);
        assert_eq!(m.readable(1, data), 1..2);
    }
}
