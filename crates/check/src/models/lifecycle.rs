//! Model of the request-span lifecycle protocol
//! (`crates/serve/src/scheduler.rs` stage emission).
//!
//! Extracted shape: every admitted request gets a six-stage span
//! timeline — `admitted → queued → batched → dispatched → kernel →
//! responded`. The *client* emits `admitted` while still holding the
//! queue mutex (after the push, before the notify); the *worker* pops
//! under that same mutex and emits the remaining five stages in
//! program order: `queued`/`batched` right after the pop,
//! `dispatched`/`kernel` after the (caught) kernel dispatch, and
//! `responded` on delivery. A kernel panic is caught
//! (`catch_unwind`): the request is delivered as a failure, but its
//! stages still close — timelines never dangle.
//!
//! Two clients against capacity 1, with client 1's request poisoned
//! so the worker's kernel "panics" on it, make every path reachable:
//! a clean six-stage request, a panicked-but-closed six-stage
//! request, and a shed request that emits no stages at all.
//!
//! Checked properties:
//! * **Exactly once, in order**: each admitted request's stage `s` is
//!   emitted only when stages `0..s` have each been emitted exactly
//!   once — no duplicates, no reordering, no skips (checked inline at
//!   every emission against the request's progress counter).
//! * **Closure**: at the end, total stage emissions equal
//!   `6 × admitted` — every admitted request's timeline is complete,
//!   including the panicked one; rejected requests emit nothing.
//! * **Result integrity**: the clean client observes its computed
//!   result, the poisoned client observes the failure sentinel.
//! * **Liveness**: submit/serve/shutdown terminates even with a
//!   panicking kernel in the mix (the worker survives the panic).
//!
//! Seeded mutants ([`LifecycleMutant`]): `admitted` emitted after the
//! queue unlock (the worker can interleave `queued` first — the race
//! the under-lock placement prevents), a panic path that skips
//! `responded` (dangling timeline), a delivery that emits `responded`
//! twice, and a dispatch that emits `kernel` before `dispatched`.

use std::rc::Rc;

use crate::exec::{CondvarId, Ctx, Instance, ModelThread, MutexId, OracleId, Step, World};
use crate::mem::{Loc, MOrd};

/// Bounded queue capacity (`queue_cap`).
pub const CAP: u64 = 1;
/// Concurrent submitting clients.
pub const CLIENTS: usize = 2;
/// Client whose request makes the kernel panic.
pub const POISONED: usize = 1;
/// Client `cid` expects result `RESULT_BASE + cid`.
pub const RESULT_BASE: u64 = 100;
/// Result sentinel for a caught kernel panic (`Err` delivery).
pub const FAILED: u64 = 999;
/// Stages per request: admitted, queued, batched, dispatched, kernel,
/// responded.
pub const STAGES: u64 = 6;

const ADMITTED: u64 = 0;
const QUEUED: u64 = 1;
const BATCHED: u64 = 2;
const DISPATCHED: u64 = 3;
const KERNEL: u64 = 4;
const RESPONDED: u64 = 5;

/// Seeded bugs the checker must flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleMutant {
    /// `admitted` emitted after the queue mutex is released: the
    /// worker can pop the request and emit `queued` first.
    AdmittedAfterUnlock,
    /// The caught-panic delivery path forgets `responded`: the
    /// panicked request's timeline never closes.
    SkipRespondedOnPanic,
    /// Delivery emits `responded` twice (e.g. once per retry of the
    /// completion notify).
    DoubleResponded,
    /// Dispatch emits `kernel` before `dispatched`.
    KernelBeforeDispatched,
}

struct Shared {
    /// Queue mutex (the scheduler's `state` lock).
    m: MutexId,
    work: CondvarId,
    qlen: Loc,
    /// Queue payload slots (client id + 1).
    slots: Vec<Loc>,
    shutdown: Loc,
    /// Clients done submitting-and-waiting; the last sets shutdown.
    finished: Loc,
    /// Per-request stage progress: number of stages emitted so far.
    progress: Vec<Loc>,
    /// Per-client completion cell (the scheduler's `Completion`).
    cm: Vec<MutexId>,
    done_cv: Vec<CondvarId>,
    done: Vec<Loc>,
    result: Vec<Loc>,
    admitted: OracleId,
    rejected: OracleId,
    /// Total stage emissions across all requests.
    stages: OracleId,
}

/// Emits stage `stage` for request `cid`, enforcing the
/// exactly-once-in-order invariant: the request's progress counter
/// must sit exactly at `stage`. Returns `false` once the invariant
/// failed (caller should stop).
fn emit(ctx: &mut Ctx<'_>, sh: &Shared, cid: usize, stage: u64) -> bool {
    let p = ctx.load(sh.progress[cid], MOrd::Relaxed);
    if p != stage {
        ctx.fail(format!(
            "request {cid}: stage {stage} emitted at progress {p} \
(duplicate, skipped, or out-of-order span)"
        ));
        return false;
    }
    ctx.store(sh.progress[cid], stage + 1, MOrd::Relaxed);
    ctx.oracle_add(sh.stages, 1);
    true
}

struct Client {
    sh: Rc<Shared>,
    mutant: Option<LifecycleMutant>,
    cid: usize,
    pc: u8,
}

impl ModelThread for Client {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Admission under the queue mutex; `admitted` is emitted
            // before the unlock so the worker (which pops under this
            // same mutex) is ordered after it.
            0 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                if ctx.load(sh.shutdown, MOrd::Relaxed) == 1
                    || ctx.load(sh.qlen, MOrd::Relaxed) >= CAP
                {
                    ctx.oracle_add(sh.rejected, 1);
                    ctx.unlock(sh.m);
                    self.pc = 4;
                    return Step::Ready;
                }
                let qlen = ctx.load(sh.qlen, MOrd::Relaxed);
                let slot = (qlen as usize).min(sh.slots.len() - 1);
                ctx.store(sh.slots[slot], self.cid as u64 + 1, MOrd::Relaxed);
                ctx.store(sh.qlen, qlen + 1, MOrd::Relaxed);
                ctx.oracle_add(sh.admitted, 1);
                let ok = if self.mutant == Some(LifecycleMutant::AdmittedAfterUnlock) {
                    true // seeded bug: emission deferred past the unlock
                } else {
                    emit(ctx, &sh, self.cid, ADMITTED)
                };
                ctx.notify_all(sh.work);
                ctx.unlock(sh.m);
                if !ok {
                    return Step::Done;
                }
                self.pc =
                    if self.mutant == Some(LifecycleMutant::AdmittedAfterUnlock) { 1 } else { 2 };
                Step::Ready
            }
            // AdmittedAfterUnlock only: the straggling emission.
            1 => {
                if !emit(ctx, &sh, self.cid, ADMITTED) {
                    return Step::Done;
                }
                self.pc = 2;
                Step::Ready
            }
            // Block on the completion cell.
            2 => {
                if !ctx.lock(sh.cm[self.cid]) {
                    return Step::Blocked;
                }
                self.pc = 3;
                Step::Ready
            }
            3 => {
                if ctx.load(sh.done[self.cid], MOrd::Relaxed) == 0 {
                    ctx.cond_wait(sh.done_cv[self.cid], sh.cm[self.cid]);
                    self.pc = 2; // re-acquire, re-check
                    return Step::Blocked;
                }
                let got = ctx.load(sh.result[self.cid], MOrd::Relaxed);
                ctx.unlock(sh.cm[self.cid]);
                let want =
                    if self.cid == POISONED { FAILED } else { RESULT_BASE + self.cid as u64 };
                if got != want {
                    ctx.fail(format!(
                        "client {} woke complete with result {got}, expected {want}",
                        self.cid
                    ));
                    return Step::Done;
                }
                self.pc = 4;
                Step::Ready
            }
            // Finished (served or shed): the last client out shuts
            // the scheduler down.
            4 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                let f = ctx.load(sh.finished, MOrd::Relaxed) + 1;
                ctx.store(sh.finished, f, MOrd::Relaxed);
                if f == CLIENTS as u64 {
                    ctx.store(sh.shutdown, 1, MOrd::Relaxed);
                    ctx.notify_all(sh.work);
                }
                ctx.unlock(sh.m);
                Step::Done
            }
            _ => Step::Done,
        }
    }
}

struct Worker {
    sh: Rc<Shared>,
    mutant: Option<LifecycleMutant>,
    pc: u8,
    /// Client id of the popped request.
    cur: usize,
    /// Whether the current request's kernel panicked (caught).
    panicked: bool,
}

impl ModelThread for Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Drain loop: pop under the mutex or park.
            0 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                self.pc = 1;
                Step::Ready
            }
            1 => {
                let qlen = ctx.load(sh.qlen, MOrd::Relaxed);
                if qlen == 0 {
                    if ctx.load(sh.shutdown, MOrd::Relaxed) == 1 {
                        ctx.unlock(sh.m);
                        return Step::Done;
                    }
                    ctx.cond_wait(sh.work, sh.m);
                    self.pc = 0; // re-acquire, re-check
                    return Step::Blocked;
                }
                ctx.store(sh.qlen, qlen - 1, MOrd::Relaxed);
                let slot = ((qlen - 1) as usize).min(sh.slots.len() - 1);
                self.cur = (ctx.load(sh.slots[slot], MOrd::Relaxed) - 1) as usize;
                ctx.unlock(sh.m);
                self.pc = 2;
                Step::Ready
            }
            // Batch formation stages, emitted right after the pop
            // (outside the lock — ordering vs `admitted` comes from
            // the mutex, ordering among these from program order).
            2 => {
                if !emit(ctx, &sh, self.cur, QUEUED) {
                    return Step::Done;
                }
                self.pc = 3;
                Step::Ready
            }
            3 => {
                if !emit(ctx, &sh, self.cur, BATCHED) {
                    return Step::Done;
                }
                self.pc = 4;
                Step::Ready
            }
            // The kernel dispatch, caught: a poisoned request panics
            // but the worker survives and still closes the stages.
            4 => {
                self.panicked = self.cur == POISONED;
                let (first, second) =
                    if self.mutant == Some(LifecycleMutant::KernelBeforeDispatched) {
                        (KERNEL, DISPATCHED) // seeded wrong order
                    } else {
                        (DISPATCHED, KERNEL)
                    };
                if !emit(ctx, &sh, self.cur, first) || !emit(ctx, &sh, self.cur, second) {
                    return Step::Done;
                }
                self.pc = 5;
                Step::Ready
            }
            // Deliver: `responded` closes the timeline (panic or
            // not), then the result is published under the completion
            // mutex.
            5 => {
                let skip =
                    self.panicked && self.mutant == Some(LifecycleMutant::SkipRespondedOnPanic);
                if !skip && !emit(ctx, &sh, self.cur, RESPONDED) {
                    return Step::Done;
                }
                if self.mutant == Some(LifecycleMutant::DoubleResponded)
                    && !emit(ctx, &sh, self.cur, RESPONDED)
                {
                    return Step::Done;
                }
                self.pc = 6;
                Step::Ready
            }
            6 => {
                if !ctx.lock(sh.cm[self.cur]) {
                    return Step::Blocked;
                }
                let val = if self.panicked { FAILED } else { RESULT_BASE + self.cur as u64 };
                ctx.store(sh.result[self.cur], val, MOrd::Relaxed);
                ctx.store(sh.done[self.cur], 1, MOrd::Relaxed);
                ctx.notify_all(sh.done_cv[self.cur]);
                ctx.unlock(sh.cm[self.cur]);
                self.pc = 0;
                Step::Ready
            }
            _ => Step::Done,
        }
    }
}

/// Builds the lifecycle model instance (optionally with a seeded
/// bug).
pub fn instance(world: &mut World, mutant: Option<LifecycleMutant>) -> Instance {
    let m = world.mutex();
    let work = world.condvar();
    let qlen = world.alloc("qlen", 0);
    let slots = (0..CLIENTS).map(|_| world.alloc("slot", 0)).collect();
    let shutdown = world.alloc("shutdown", 0);
    let finished = world.alloc("finished", 0);
    let progress = (0..CLIENTS).map(|_| world.alloc("progress", 0)).collect();
    let cm = (0..CLIENTS).map(|_| world.mutex()).collect();
    let done_cv = (0..CLIENTS).map(|_| world.condvar()).collect();
    let done = (0..CLIENTS).map(|_| world.alloc("done", 0)).collect();
    let result = (0..CLIENTS).map(|_| world.alloc("result", 0)).collect();
    let admitted = world.oracle("admitted");
    let rejected = world.oracle("rejected");
    let stages = world.oracle("stages");
    let sh = Rc::new(Shared {
        m,
        work,
        qlen,
        slots,
        shutdown,
        finished,
        progress,
        cm,
        done_cv,
        done,
        result,
        admitted,
        rejected,
        stages,
    });

    let mut threads: Vec<Box<dyn ModelThread>> =
        vec![Box::new(Worker { sh: Rc::clone(&sh), mutant, pc: 0, cur: 0, panicked: false })];
    for cid in 0..CLIENTS {
        threads.push(Box::new(Client { sh: Rc::clone(&sh), mutant, cid, pc: 0 }));
    }
    Instance {
        threads,
        final_check: Box::new(move |w| {
            let adm = w.oracle_value(admitted);
            let rej = w.oracle_value(rejected);
            let emitted = w.oracle_value(stages);
            if adm + rej != CLIENTS as i64 {
                return Err(format!(
                    "accounting: {adm} admitted + {rej} rejected != {CLIENTS} requests"
                ));
            }
            if emitted != adm * STAGES as i64 {
                return Err(format!(
                    "closure: {emitted} stage emissions for {adm} admitted request(s), \
expected {} — a timeline dangles or overflows",
                    adm * STAGES as i64
                ));
            }
            Ok(())
        }),
    }
}
