//! Model of the serving plane's admission/completion handshake
//! (`crates/serve/src/scheduler.rs`).
//!
//! Extracted shape: a client submits by taking the queue mutex,
//! deciding admission against the bounded queue (`qlen < CAP`, else
//! reject and walk away), pushing its request, and notifying the
//! worker — then blocks on its private completion cell (mutex +
//! condvar + result slot) until the worker delivers. The worker
//! loops: under the queue mutex, pop a request (or `cond_wait` when
//! empty, or exit when empty *and* shut down), compute the result
//! outside the lock, then publish it *under the completion mutex,
//! before the done flag*, and notify. The last client to finish sets
//! shutdown and wakes the worker — the daemon's
//! `scheduler().shutdown()` after `/control/stop`.
//!
//! Two clients against capacity 1 make every admission outcome
//! reachable: both admitted (serialized through the worker), or one
//! admitted and one shed.
//!
//! Checked properties:
//! * **Bounded admission**: the queue never grows past `CAP` — the
//!   backpressure promise behind HTTP 503 (load is shed, latency is
//!   not unbounded).
//! * **Result integrity**: an admitted client always observes its own
//!   completed result (`RESULT_BASE + cid`), never a missing or torn
//!   one — delivery publishes the result before the completion flag,
//!   under the completion mutex.
//! * **Accounting**: every request is admitted or rejected exactly
//!   once, and exactly the admitted ones are served (the
//!   `spmv_serve_{admitted,rejected,completed}_total` identity).
//! * **Liveness**: submit/serve/shutdown terminates; a missed wakeup
//!   (park/notify race) surfaces as a deadlock.
//!
//! Batch formation is deliberately out of scope: `pop_batch` is pure
//! queue surgery under the same mutex hold as the single-request pop
//! modeled here, and is unit-tested directly.
//!
//! Seeded mutants ([`AdmissionMutant`]): an off-by-one admission
//! predicate (`qlen > CAP` admits one past the bound), an admission
//! check on an unlocked read (two clients both see room and
//! over-admit), an enqueue that skips the worker notify (parked
//! worker never wakes → deadlock), and a delivery that signals
//! completion before storing the result (client wakes to a missing
//! result).

use std::rc::Rc;

use crate::exec::{CondvarId, Ctx, Instance, ModelThread, MutexId, OracleId, Step, World};
use crate::mem::{Loc, MOrd};

/// Bounded queue capacity (`queue_cap`).
pub const CAP: u64 = 1;
/// Concurrent submitting clients.
pub const CLIENTS: usize = 2;
/// Client `cid` expects result `RESULT_BASE + cid`.
pub const RESULT_BASE: u64 = 100;

/// Seeded bugs the checker must flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMutant {
    /// Admission predicate `qlen > CAP` instead of `qlen >= CAP`: one
    /// request too many slips past the bound.
    OverAdmit,
    /// Admission decided on an unlocked `qlen` read, push under the
    /// lock without re-checking: two clients race past the bound.
    CheckOutsideLock,
    /// Push without `notify`: a worker parked on the work condvar
    /// never learns about the request.
    EnqueueWithoutNotify,
    /// Delivery signals the done flag (and notifies) before storing
    /// the result: the client can wake to an empty slot.
    CompleteBeforeResult,
}

struct Shared {
    /// Queue mutex (the scheduler's `state` lock).
    m: MutexId,
    work: CondvarId,
    /// Mutex-protected scheduler state (modeled as atomics for the
    /// view machinery; every access outside the `CheckOutsideLock`
    /// mutant happens with `m` held, so relaxed shadow operations
    /// observe the newest store).
    qlen: Loc,
    /// Queue payload slots (`CLIENTS` of them, so a mutant's
    /// over-admission stays in model bounds and is caught by the
    /// capacity invariant, not an index panic).
    slots: Vec<Loc>,
    shutdown: Loc,
    /// Clients done submitting-and-waiting; the last sets shutdown.
    finished: Loc,
    /// Per-client completion cell: mutex + condvar + done flag +
    /// result slot (the scheduler's `Completion`).
    cm: Vec<MutexId>,
    done_cv: Vec<CondvarId>,
    done: Vec<Loc>,
    result: Vec<Loc>,
    admitted: OracleId,
    rejected: OracleId,
    served: OracleId,
}

/// Pushes client `cid`'s request under the queue mutex and enforces
/// the bounded-queue invariant. Returns `false` if the invariant
/// already failed (caller should stop).
fn push(ctx: &mut Ctx<'_>, sh: &Shared, cid: usize, mutant: Option<AdmissionMutant>) -> bool {
    let qlen = ctx.load(sh.qlen, MOrd::Relaxed);
    let slot = (qlen as usize).min(sh.slots.len() - 1);
    ctx.store(sh.slots[slot], cid as u64 + 1, MOrd::Relaxed);
    ctx.store(sh.qlen, qlen + 1, MOrd::Relaxed);
    ctx.oracle_add(sh.admitted, 1);
    if qlen + 1 > CAP {
        ctx.fail(format!("bounded queue grew to {} past capacity {CAP}", qlen + 1));
        return false;
    }
    if mutant != Some(AdmissionMutant::EnqueueWithoutNotify) {
        ctx.notify_all(sh.work);
    }
    true
}

struct Client {
    sh: Rc<Shared>,
    mutant: Option<AdmissionMutant>,
    cid: usize,
    pc: u8,
}

impl ModelThread for Client {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Admission, decided under the queue mutex.
            0 => {
                if self.mutant == Some(AdmissionMutant::CheckOutsideLock) {
                    // Seeded bug: the decision reads `qlen` without
                    // the lock; the push later never re-checks.
                    let qlen = ctx.load(sh.qlen, MOrd::Relaxed);
                    if qlen >= CAP {
                        ctx.oracle_add(sh.rejected, 1);
                        self.pc = 5;
                    } else {
                        self.pc = 1;
                    }
                    return Step::Ready;
                }
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                if ctx.load(sh.shutdown, MOrd::Relaxed) == 1 {
                    ctx.oracle_add(sh.rejected, 1);
                    ctx.unlock(sh.m);
                    self.pc = 5;
                    return Step::Ready;
                }
                let qlen = ctx.load(sh.qlen, MOrd::Relaxed);
                let full = if self.mutant == Some(AdmissionMutant::OverAdmit) {
                    qlen > CAP // seeded off-by-one
                } else {
                    qlen >= CAP
                };
                if full {
                    ctx.oracle_add(sh.rejected, 1);
                    ctx.unlock(sh.m);
                    self.pc = 5;
                    return Step::Ready;
                }
                let ok = push(ctx, &sh, self.cid, self.mutant);
                ctx.unlock(sh.m);
                if !ok {
                    return Step::Done;
                }
                self.pc = 2;
                Step::Ready
            }
            // CheckOutsideLock only: locked push, no re-check.
            1 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                let ok = push(ctx, &sh, self.cid, self.mutant);
                ctx.unlock(sh.m);
                if !ok {
                    return Step::Done;
                }
                self.pc = 2;
                Step::Ready
            }
            // Block on the completion cell.
            2 => {
                if !ctx.lock(sh.cm[self.cid]) {
                    return Step::Blocked;
                }
                self.pc = 3;
                Step::Ready
            }
            3 => {
                if ctx.load(sh.done[self.cid], MOrd::Relaxed) == 0 {
                    ctx.cond_wait(sh.done_cv[self.cid], sh.cm[self.cid]);
                    self.pc = 2; // re-acquire, re-check
                    return Step::Blocked;
                }
                let got = ctx.load(sh.result[self.cid], MOrd::Relaxed);
                ctx.unlock(sh.cm[self.cid]);
                let want = RESULT_BASE + self.cid as u64;
                if got != want {
                    ctx.fail(format!(
                        "client {} woke complete with result {got}, expected {want}",
                        self.cid
                    ));
                    return Step::Done;
                }
                self.pc = 5;
                Step::Ready
            }
            // Finished (served or shed): the last client out shuts
            // the scheduler down, like the daemon's serve lanes.
            5 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                let f = ctx.load(sh.finished, MOrd::Relaxed) + 1;
                ctx.store(sh.finished, f, MOrd::Relaxed);
                if f == CLIENTS as u64 {
                    ctx.store(sh.shutdown, 1, MOrd::Relaxed);
                    ctx.notify_all(sh.work);
                }
                ctx.unlock(sh.m);
                Step::Done
            }
            _ => Step::Done,
        }
    }
}

struct Worker {
    sh: Rc<Shared>,
    mutant: Option<AdmissionMutant>,
    pc: u8,
    /// Client id of the popped request.
    cur: usize,
    /// Result computed outside the lock.
    val: u64,
}

impl ModelThread for Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Drain loop: pop under the mutex or park.
            0 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                self.pc = 1;
                Step::Ready
            }
            1 => {
                let qlen = ctx.load(sh.qlen, MOrd::Relaxed);
                if qlen == 0 {
                    if ctx.load(sh.shutdown, MOrd::Relaxed) == 1 {
                        ctx.unlock(sh.m);
                        return Step::Done;
                    }
                    ctx.cond_wait(sh.work, sh.m);
                    self.pc = 0; // re-acquire, re-check
                    return Step::Blocked;
                }
                ctx.store(sh.qlen, qlen - 1, MOrd::Relaxed);
                let slot = ((qlen - 1) as usize).min(sh.slots.len() - 1);
                self.cur = (ctx.load(sh.slots[slot], MOrd::Relaxed) - 1) as usize;
                ctx.unlock(sh.m);
                self.pc = 2;
                Step::Ready
            }
            // The SpMV itself, outside every lock.
            2 => {
                self.val = RESULT_BASE + self.cur as u64;
                self.pc = 3;
                Step::Ready
            }
            // Deliver under the completion mutex.
            3 => {
                if !ctx.lock(sh.cm[self.cur]) {
                    return Step::Blocked;
                }
                self.pc = 4;
                Step::Ready
            }
            4 => {
                if self.mutant == Some(AdmissionMutant::CompleteBeforeResult) {
                    // Seeded wrong order: flag + notify first, result
                    // store after the unlock.
                    ctx.store(sh.done[self.cur], 1, MOrd::Relaxed);
                    ctx.notify_all(sh.done_cv[self.cur]);
                    ctx.unlock(sh.cm[self.cur]);
                    self.pc = 6;
                    return Step::Ready;
                }
                ctx.store(sh.result[self.cur], self.val, MOrd::Relaxed);
                ctx.store(sh.done[self.cur], 1, MOrd::Relaxed);
                ctx.notify_all(sh.done_cv[self.cur]);
                ctx.unlock(sh.cm[self.cur]);
                ctx.oracle_add(sh.served, 1);
                self.pc = 0;
                Step::Ready
            }
            // CompleteBeforeResult: the straggling result store.
            6 => {
                ctx.store(sh.result[self.cur], self.val, MOrd::Relaxed);
                ctx.oracle_add(sh.served, 1);
                self.pc = 0;
                Step::Ready
            }
            _ => Step::Done,
        }
    }
}

/// Builds the admission model instance (optionally with a seeded
/// bug).
pub fn instance(world: &mut World, mutant: Option<AdmissionMutant>) -> Instance {
    let m = world.mutex();
    let work = world.condvar();
    let qlen = world.alloc("qlen", 0);
    let slots = (0..CLIENTS).map(|_| world.alloc("slot", 0)).collect();
    let shutdown = world.alloc("shutdown", 0);
    let finished = world.alloc("finished", 0);
    let cm = (0..CLIENTS).map(|_| world.mutex()).collect();
    let done_cv = (0..CLIENTS).map(|_| world.condvar()).collect();
    let done = (0..CLIENTS).map(|_| world.alloc("done", 0)).collect();
    let result = (0..CLIENTS).map(|_| world.alloc("result", 0)).collect();
    let admitted = world.oracle("admitted");
    let rejected = world.oracle("rejected");
    let served = world.oracle("served");
    let sh = Rc::new(Shared {
        m,
        work,
        qlen,
        slots,
        shutdown,
        finished,
        cm,
        done_cv,
        done,
        result,
        admitted,
        rejected,
        served,
    });

    let mut threads: Vec<Box<dyn ModelThread>> =
        vec![Box::new(Worker { sh: Rc::clone(&sh), mutant, pc: 0, cur: 0, val: 0 })];
    for cid in 0..CLIENTS {
        threads.push(Box::new(Client { sh: Rc::clone(&sh), mutant, cid, pc: 0 }));
    }
    Instance {
        threads,
        final_check: Box::new(move |w| {
            let adm = w.oracle_value(admitted);
            let rej = w.oracle_value(rejected);
            let srv = w.oracle_value(served);
            if adm + rej != CLIENTS as i64 {
                return Err(format!(
                    "accounting: {adm} admitted + {rej} rejected != {CLIENTS} requests"
                ));
            }
            if srv != adm {
                return Err(format!("accounting: {srv} served != {adm} admitted"));
            }
            Ok(())
        }),
    }
}
