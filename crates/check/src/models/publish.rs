//! Model of the `publish_ns = 0` disabled-tracer fast path
//! (`crates/telemetry/src/trace.rs` registry + the dispatch capture
//! in `crates/kernels/src/engine.rs`).
//!
//! Extracted shape: tracer installation writes the tracer's
//! configuration (`publish_ns`, modeled as one cell) first, then
//! publishes the registry pointer with a **release store**; readers
//! load the pointer with **acquire**. The engine captures the
//! tracer's `publish_ns` **once per dispatch** into a local; every
//! event site in that dispatch tests the captured local, so a
//! dispatch either records its full `wake`/`task`/`park` triple or
//! records nothing — even if the tracer is torn down mid-dispatch.
//!
//! Checked properties:
//! * **Initialized config**: a thread that observes the registry
//!   pointer must observe the configuration written before it
//!   (`publish_ns` is never read as its zeroed initial value).
//! * **Balanced triple**: the per-dispatch event count is 0 or 3,
//!   never a partial triple.
//!
//! Seeded mutants ([`PublishMutant`]): re-reading the registry at
//! each event site (a concurrent disable tears the triple) and a
//! relaxed registry publish (the config write is no longer ordered
//! before the pointer, so an enabled reader can see `publish_ns = 0`
//! — or garbage — where the real code would dereference an
//! uninitialized tracer).

use std::rc::Rc;

use crate::exec::{Ctx, Instance, ModelThread, OracleId, Step, World};
use crate::mem::{Loc, MOrd};

/// The non-zero `publish_ns` the installed tracer carries.
pub const PUBLISH_NS: u64 = 42;

/// Seeded bugs the checker must flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishMutant {
    /// The dispatch re-reads the registry at every event site instead
    /// of capturing `publish_ns` once: a concurrent disable lands
    /// between events and the wake/task/park triple comes out
    /// partial.
    ReReadRegistry,
    /// The registry pointer is published with a relaxed store: the
    /// configuration written before it is not ordered with the
    /// pointer, so a reader that sees the tracer may read its
    /// `publish_ns` as the uninitialized 0.
    RelaxedInstall,
}

struct Shared {
    /// Tracer configuration, written before install (0 = unwritten).
    publish_ns: Loc,
    /// Registry pointer sentinel: 0 = none, 1 = installed.
    registry: Loc,
    /// Oracle: events recorded by the dispatch.
    events: OracleId,
}

/// Installs the tracer, then disables it again — the exact window the
/// engine's once-per-dispatch capture is designed to survive.
struct Lifecycle {
    sh: Rc<Shared>,
    mutant: Option<PublishMutant>,
    pc: u8,
}

impl ModelThread for Lifecycle {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            0 => {
                ctx.store(sh.publish_ns, PUBLISH_NS, MOrd::Relaxed);
                self.pc = 1;
                Step::Ready
            }
            1 => {
                let ord = if self.mutant == Some(PublishMutant::RelaxedInstall) {
                    MOrd::Relaxed
                } else {
                    MOrd::Release
                };
                ctx.store(sh.registry, 1, ord);
                self.pc = 2;
                Step::Ready
            }
            // Disable: clear the pointer (readers that already hold a
            // captured publish_ns keep using it; new dispatches see
            // the fast path).
            _ => {
                ctx.store(sh.registry, 0, MOrd::Relaxed);
                Step::Done
            }
        }
    }
}

/// One dispatch: capture the tracer once, then emit the
/// wake/task/park triple through the captured (or, mutated,
/// re-read) gate.
struct Dispatch {
    sh: Rc<Shared>,
    mutant: Option<PublishMutant>,
    pc: u8,
    /// Captured per-dispatch gate (0 = tracer disabled).
    publish_ns: u64,
}

impl Dispatch {
    /// The event-site gate: the correct code tests the captured
    /// local; the ReReadRegistry mutant consults the registry again.
    fn gate(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        if self.mutant == Some(PublishMutant::ReReadRegistry) {
            if ctx.load(self.sh.registry, MOrd::Acquire) == 1 {
                ctx.load(self.sh.publish_ns, MOrd::Relaxed)
            } else {
                0
            }
        } else {
            self.publish_ns
        }
    }
}

impl ModelThread for Dispatch {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Capture the tracer once for the whole dispatch.
            0 => {
                if ctx.load(sh.registry, MOrd::Acquire) == 1 {
                    let ns = ctx.load(sh.publish_ns, MOrd::Relaxed);
                    if ns == 0 {
                        ctx.fail(
                            "observed the installed tracer with uninitialized publish_ns (= 0)",
                        );
                        return Step::Done;
                    }
                    self.publish_ns = ns;
                }
                self.pc = 1;
                Step::Ready
            }
            // wake / task / park event sites.
            1 | 2 => {
                if self.gate(ctx) != 0 {
                    ctx.oracle_add(sh.events, 1);
                }
                self.pc += 1;
                Step::Ready
            }
            _ => {
                if self.gate(ctx) != 0 {
                    ctx.oracle_add(sh.events, 1);
                }
                Step::Done
            }
        }
    }
}

/// Builds the publish fast-path model instance (optionally with a
/// seeded bug).
pub fn instance(world: &mut World, mutant: Option<PublishMutant>) -> Instance {
    let sh = Rc::new(Shared {
        publish_ns: world.alloc("publish_ns", 0),
        registry: world.alloc("registry", 0),
        events: world.oracle("events"),
    });
    let events = sh.events;
    Instance {
        threads: vec![
            Box::new(Lifecycle { sh: Rc::clone(&sh), mutant, pc: 0 }),
            Box::new(Dispatch { sh, mutant, pc: 0, publish_ns: 0 }),
        ],
        final_check: Box::new(move |w| {
            let n = w.oracle_value(events);
            if n == 0 || n == 3 {
                Ok(())
            } else {
                Err(format!("partial wake/task/park triple: {n} of 3 events recorded"))
            }
        }),
    }
}
