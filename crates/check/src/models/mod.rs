//! The extracted protocol models plus a registry the `xtask check`
//! driver and the self-tests iterate.
//!
//! Every protocol exposes its real implementation and a set of
//! *seeded mutants* — deliberately wrong variants mirroring realistic
//! regressions. The checker must pass every real model and flag every
//! mutant; the mutants are the checker's own regression suite, the
//! moral equivalent of a failing fixture for a static-analysis
//! policy.

pub mod admission;
pub mod handshake;
pub mod lifecycle;
pub mod publish;
pub mod seqlock;

use crate::exec::{Instance, World};

/// A seeded-bug variant of a protocol, which exploration must flag.
pub struct MutantInfo {
    /// Stable name (`--demo-mutant` argument, test identifier).
    pub name: &'static str,
    /// What the seeded bug is, one line.
    pub about: &'static str,
    /// Builds the mutated model.
    pub build: fn(&mut World) -> Instance,
}

/// One extracted protocol: the real model plus its seeded mutants.
pub struct Protocol {
    /// Stable name (`--model` argument, test identifier).
    pub name: &'static str,
    /// What the protocol is, one line.
    pub about: &'static str,
    /// Builds the faithful model.
    pub build: fn(&mut World) -> Instance,
    pub mutants: &'static [MutantInfo],
}

fn seqlock_real(w: &mut World) -> Instance {
    seqlock::instance(w, None)
}
fn seqlock_late_bump(w: &mut World) -> Instance {
    seqlock::instance(w, Some(seqlock::SeqlockMutant::LateVersionBump))
}
fn seqlock_relaxed_publish(w: &mut World) -> Instance {
    seqlock::instance(w, Some(seqlock::SeqlockMutant::RelaxedPublish))
}

fn handshake_real(w: &mut World) -> Instance {
    handshake::instance(w, None)
}
fn handshake_claim_bound(w: &mut World) -> Instance {
    handshake::instance(w, Some(handshake::HandshakeMutant::ClaimBoundOffByOne))
}
fn handshake_nonatomic_claim(w: &mut World) -> Instance {
    handshake::instance(w, Some(handshake::HandshakeMutant::NonAtomicClaim))
}
fn handshake_early_decrement(w: &mut World) -> Instance {
    handshake::instance(w, Some(handshake::HandshakeMutant::EarlyPendingDecrement))
}
fn handshake_wait_before_check(w: &mut World) -> Instance {
    handshake::instance(w, Some(handshake::HandshakeMutant::WaitBeforeCheck))
}

fn publish_real(w: &mut World) -> Instance {
    publish::instance(w, None)
}
fn publish_reread(w: &mut World) -> Instance {
    publish::instance(w, Some(publish::PublishMutant::ReReadRegistry))
}
fn publish_relaxed_install(w: &mut World) -> Instance {
    publish::instance(w, Some(publish::PublishMutant::RelaxedInstall))
}

fn admission_real(w: &mut World) -> Instance {
    admission::instance(w, None)
}
fn admission_overadmit(w: &mut World) -> Instance {
    admission::instance(w, Some(admission::AdmissionMutant::OverAdmit))
}
fn admission_check_outside_lock(w: &mut World) -> Instance {
    admission::instance(w, Some(admission::AdmissionMutant::CheckOutsideLock))
}
fn admission_enqueue_without_notify(w: &mut World) -> Instance {
    admission::instance(w, Some(admission::AdmissionMutant::EnqueueWithoutNotify))
}
fn admission_complete_before_result(w: &mut World) -> Instance {
    admission::instance(w, Some(admission::AdmissionMutant::CompleteBeforeResult))
}

fn lifecycle_real(w: &mut World) -> Instance {
    lifecycle::instance(w, None)
}
fn lifecycle_admitted_after_unlock(w: &mut World) -> Instance {
    lifecycle::instance(w, Some(lifecycle::LifecycleMutant::AdmittedAfterUnlock))
}
fn lifecycle_skip_responded_on_panic(w: &mut World) -> Instance {
    lifecycle::instance(w, Some(lifecycle::LifecycleMutant::SkipRespondedOnPanic))
}
fn lifecycle_double_responded(w: &mut World) -> Instance {
    lifecycle::instance(w, Some(lifecycle::LifecycleMutant::DoubleResponded))
}
fn lifecycle_kernel_before_dispatched(w: &mut World) -> Instance {
    lifecycle::instance(w, Some(lifecycle::LifecycleMutant::KernelBeforeDispatched))
}

/// All extracted protocols, in checking order.
pub fn protocols() -> &'static [Protocol] {
    &[
        Protocol {
            name: "seqlock",
            about: "TraceRing seqlock-per-slot record/snapshot (trace.rs)",
            build: seqlock_real,
            mutants: &[
                MutantInfo {
                    name: "late-version-bump",
                    about: "seq_writing bump moved after the payload stores",
                    build: seqlock_late_bump,
                },
                MutantInfo {
                    name: "relaxed-publish",
                    about: "final seq_complete store downgraded to relaxed",
                    build: seqlock_relaxed_publish,
                },
            ],
        },
        Protocol {
            name: "handshake",
            about: "ExecEngine dispatch barrier + guided claim loop (engine.rs, schedule.rs)",
            build: handshake_real,
            mutants: &[
                MutantInfo {
                    name: "claim-bound-off-by-one",
                    about: "claim predicate start <= nrows hands out an empty chunk",
                    build: handshake_claim_bound,
                },
                MutantInfo {
                    name: "non-atomic-claim",
                    about: "claim split into load + store, losing updates",
                    build: handshake_nonatomic_claim,
                },
                MutantInfo {
                    name: "early-pending-decrement",
                    about: "worker reports done before running its task",
                    build: handshake_early_decrement,
                },
                MutantInfo {
                    name: "wait-before-check",
                    about: "worker waits once before checking the epoch predicate",
                    build: handshake_wait_before_check,
                },
            ],
        },
        Protocol {
            name: "publish",
            about: "publish_ns=0 disabled-tracer fast path (trace.rs registry + engine capture)",
            build: publish_real,
            mutants: &[
                MutantInfo {
                    name: "reread-registry",
                    about: "event sites re-read the registry instead of the captured gate",
                    build: publish_reread,
                },
                MutantInfo {
                    name: "relaxed-install",
                    about: "registry pointer published with a relaxed store",
                    build: publish_relaxed_install,
                },
            ],
        },
        Protocol {
            name: "admission",
            about: "serving-plane admission/completion handshake (serve/scheduler.rs)",
            build: admission_real,
            mutants: &[
                MutantInfo {
                    name: "overadmit",
                    about: "admission predicate qlen > CAP admits one past the bound",
                    build: admission_overadmit,
                },
                MutantInfo {
                    name: "check-outside-lock",
                    about: "admission decided on an unlocked queue-length read",
                    build: admission_check_outside_lock,
                },
                MutantInfo {
                    name: "enqueue-without-notify",
                    about: "push skips the worker notify; a parked worker never wakes",
                    build: admission_enqueue_without_notify,
                },
                MutantInfo {
                    name: "complete-before-result",
                    about: "done flag signalled before the result is stored",
                    build: admission_complete_before_result,
                },
            ],
        },
        Protocol {
            name: "lifecycle",
            about: "request-span six-stage timeline emission (serve/scheduler.rs)",
            build: lifecycle_real,
            mutants: &[
                MutantInfo {
                    name: "admitted-after-unlock",
                    about:
                        "admitted span emitted after the queue unlock; worker can emit queued first",
                    build: lifecycle_admitted_after_unlock,
                },
                MutantInfo {
                    name: "skip-responded-on-panic",
                    about: "caught-panic delivery forgets responded; the timeline dangles",
                    build: lifecycle_skip_responded_on_panic,
                },
                MutantInfo {
                    name: "double-responded",
                    about: "delivery emits responded twice",
                    build: lifecycle_double_responded,
                },
                MutantInfo {
                    name: "kernel-before-dispatched",
                    about: "kernel span emitted before dispatched",
                    build: lifecycle_kernel_before_dispatched,
                },
            ],
        },
    ]
}

/// Looks a protocol up by name.
pub fn find(name: &str) -> Option<&'static Protocol> {
    protocols().iter().find(|p| p.name == name)
}
