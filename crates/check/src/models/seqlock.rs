//! Model of the `TraceRing` seqlock-per-slot protocol
//! (`crates/telemetry/src/trace.rs`).
//!
//! Extracted, parameter-reduced shape of `TraceBuffer::record` /
//! `read_slot`: writers claim a global index from `head` with a
//! relaxed `fetch_add`, then claim the *slot* with a single-attempt
//! CAS of the sequence word to `2*index+1` (**acquire** on success;
//! an odd word or a lost race sheds the event), issue a **release
//! fence**, store the payload cells relaxed, and publish `2*index+2`
//! with a **release store**. The reader loads `head`, then for each
//! retained index does the seqlock dance: acquire-load of the
//! sequence word, relaxed payload loads, **acquire fence**, relaxed
//! recheck — accepting the event only if both sequence reads
//! returned `complete(index)`.
//!
//! The slot-claim CAS is load-bearing, and earlier revisions of the
//! real protocol (a plain relaxed `seq_writing` store) were caught by
//! this very model with two distinct torn-read interleavings: a
//! wrapping writer's odd marker masked by the previous writer's later
//! `seq_complete` store, and a straggling old writer's late payload
//! store landing modification-order after the new writer's payload.
//! Both are impossible once same-slot payload episodes are mutually
//! exclusive and happens-before chained (CAS acquire → previous
//! `seq_complete` release).
//!
//! The model shrinks the ring to [`CAPACITY`] slot(s) and the payload
//! to two cells whose correct values are derived from the global
//! index (`100+i` / `200+i`), so a torn event — any mix of two
//! writers' payloads, or a stale cell — is detectable by value.
//!
//! Checked properties:
//! * **No torn events**: an accepted event's payload cells both match
//!   the claimed index exactly.
//! * **Oldest-first retention**: accepted indices are strictly
//!   increasing and within `head - capacity .. head`.
//!
//! Seeded mutants ([`SeqlockMutant`]): the slot claim moved after the
//! payload stores (a writer scribbles before owning the slot) and the
//! final publish downgraded to relaxed (payload never synchronizes,
//! so a reader can accept stale cells).

use crate::exec::{Ctx, Instance, ModelThread, Step, World};
use crate::mem::{Loc, MOrd};

/// Ring slots in the model (wraparound needs just one).
pub const CAPACITY: u64 = 1;
/// Concurrent writers, one event each (indices 0 and 1 share slot 0).
pub const WRITERS: usize = 2;

const fn seq_writing(index: u64) -> u64 {
    2 * index + 1
}
const fn seq_complete(index: u64) -> u64 {
    2 * index + 2
}

/// Seeded bugs the checker must flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqlockMutant {
    /// The `seq_writing` slot claim happens *after* the payload
    /// stores, so a writer scribbles over a slot it does not own and
    /// a concurrent reader sees a stable-looking sequence word while
    /// the payload changes under it.
    LateVersionBump,
    /// The final `seq_complete` store is relaxed instead of release:
    /// nothing publishes the payload, and a reader that observes the
    /// new sequence word may still read stale payload cells.
    RelaxedPublish,
}

struct Ring {
    head: Loc,
    seq: Vec<Loc>,
    pay_a: Vec<Loc>,
    pay_b: Vec<Loc>,
}

// The single-slot model makes this constant-zero today; the modulo
// keeps the mapping honest if CAPACITY is ever raised.
#[allow(clippy::modulo_one)]
fn slot(index: u64) -> usize {
    (index % CAPACITY) as usize
}

struct Writer {
    ring: std::rc::Rc<Ring>,
    mutant: Option<SeqlockMutant>,
    pc: u8,
    index: u64,
}

impl ModelThread for Writer {
    /// One slot-claim CAS attempt: succeeds iff the word is even (no
    /// owner); an odd word or a lost race sheds the event, exactly as
    /// `TraceBuffer::record` does.
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        // Correct order:   claim index, CAS slot odd (acquire), release fence, a, b, seq(even, release)
        // LateVersionBump: claim index, a, b, CAS slot odd, release fence, seq(even, release)
        // RelaxedPublish:  correct order, final store relaxed
        let late = self.mutant == Some(SeqlockMutant::LateVersionBump);
        match self.pc {
            0 => {
                // relaxed claim of a globally unique index
                let (old, _) = ctx.rmw(self.ring.head, MOrd::Relaxed, |v| Some(v + 1));
                self.index = old;
                self.pc = 1;
                Step::Ready
            }
            1 => {
                let s = slot(self.index);
                if late {
                    ctx.store(self.ring.pay_a[s], 100 + self.index, MOrd::Relaxed);
                } else {
                    let w = seq_writing(self.index);
                    let (_, claimed) =
                        ctx.rmw(self.ring.seq[s], MOrd::Acquire, |cur| (cur % 2 == 0).then_some(w));
                    if !claimed {
                        return Step::Done; // slot owned: event shed
                    }
                }
                self.pc = 2;
                Step::Ready
            }
            2 => {
                let s = slot(self.index);
                if late {
                    ctx.store(self.ring.pay_b[s], 200 + self.index, MOrd::Relaxed);
                } else {
                    ctx.fence(MOrd::Release);
                }
                self.pc = 3;
                Step::Ready
            }
            3 => {
                let s = slot(self.index);
                if late {
                    let w = seq_writing(self.index);
                    let (_, claimed) =
                        ctx.rmw(self.ring.seq[s], MOrd::Acquire, |cur| (cur % 2 == 0).then_some(w));
                    if !claimed {
                        return Step::Done; // shed — but the payload is already scribbled
                    }
                } else {
                    ctx.store(self.ring.pay_a[s], 100 + self.index, MOrd::Relaxed);
                }
                self.pc = 4;
                Step::Ready
            }
            4 => {
                let s = slot(self.index);
                if late {
                    ctx.fence(MOrd::Release);
                } else {
                    ctx.store(self.ring.pay_b[s], 200 + self.index, MOrd::Relaxed);
                }
                self.pc = 5;
                Step::Ready
            }
            _ => {
                let s = slot(self.index);
                let ord = if self.mutant == Some(SeqlockMutant::RelaxedPublish) {
                    MOrd::Relaxed
                } else {
                    MOrd::Release
                };
                ctx.store(self.ring.seq[s], seq_complete(self.index), ord);
                Step::Done
            }
        }
    }
}

/// Snapshot reader: one seqlock-validated read per retained index.
struct Reader {
    ring: std::rc::Rc<Ring>,
    pc: u8,
    head: u64,
    index: u64,
    q1: u64,
    a: u64,
    b: u64,
    last_accepted: Option<u64>,
}

impl Reader {
    fn advance(&mut self) -> Step {
        self.index += 1;
        if self.index >= self.head {
            return Step::Done;
        }
        self.pc = 1;
        Step::Ready
    }
}

impl ModelThread for Reader {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.pc {
            0 => {
                // relaxed head read; a stale head only narrows the
                // snapshot window (mirrors TraceBuffer::snapshot).
                self.head = ctx.load(self.ring.head, MOrd::Relaxed);
                self.index = self.head.saturating_sub(CAPACITY);
                if self.index >= self.head {
                    return Step::Done;
                }
                self.pc = 1;
                Step::Ready
            }
            1 => {
                let s = slot(self.index);
                self.q1 = ctx.load(self.ring.seq[s], MOrd::Acquire);
                if self.q1 != seq_complete(self.index) {
                    return self.advance();
                }
                self.pc = 2;
                Step::Ready
            }
            2 => {
                self.a = ctx.load(self.ring.pay_a[slot(self.index)], MOrd::Relaxed);
                self.pc = 3;
                Step::Ready
            }
            3 => {
                self.b = ctx.load(self.ring.pay_b[slot(self.index)], MOrd::Relaxed);
                self.pc = 4;
                Step::Ready
            }
            4 => {
                ctx.fence(MOrd::Acquire);
                self.pc = 5;
                Step::Ready
            }
            _ => {
                let s = slot(self.index);
                let q2 = ctx.load(self.ring.seq[s], MOrd::Relaxed);
                if q2 != self.q1 {
                    return self.advance();
                }
                // Accepted: the payload must belong exactly to this
                // index — anything else is a torn read.
                if self.a != 100 + self.index || self.b != 200 + self.index {
                    ctx.fail(format!(
                        "torn event accepted for index {}: payload ({}, {}), expected ({}, {})",
                        self.index,
                        self.a,
                        self.b,
                        100 + self.index,
                        200 + self.index
                    ));
                    return Step::Done;
                }
                if let Some(prev) = self.last_accepted {
                    if self.index <= prev {
                        ctx.fail(format!(
                            "snapshot order violated: index {} after {}",
                            self.index, prev
                        ));
                        return Step::Done;
                    }
                }
                self.last_accepted = Some(self.index);
                self.advance()
            }
        }
    }
}

/// Builds the seqlock model instance (optionally with a seeded bug).
pub fn instance(world: &mut World, mutant: Option<SeqlockMutant>) -> Instance {
    let ring = std::rc::Rc::new(Ring {
        head: world.alloc("head", 0),
        seq: (0..CAPACITY).map(|_| world.alloc("seq", 0)).collect(),
        pay_a: (0..CAPACITY).map(|_| world.alloc("pay_a", 0)).collect(),
        pay_b: (0..CAPACITY).map(|_| world.alloc("pay_b", 0)).collect(),
    });
    let mut threads: Vec<Box<dyn ModelThread>> = Vec::new();
    for _ in 0..WRITERS {
        threads.push(Box::new(Writer { ring: std::rc::Rc::clone(&ring), mutant, pc: 0, index: 0 }));
    }
    threads.push(Box::new(Reader {
        ring,
        pc: 0,
        head: 0,
        index: 0,
        q1: 0,
        a: 0,
        b: 0,
        last_accepted: None,
    }));
    Instance { threads, final_check: Box::new(|_| Ok(())) }
}
