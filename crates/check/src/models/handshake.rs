//! Model of the `ExecEngine` dispatch handshake and the guided-claim
//! loop (`crates/kernels/src/engine.rs` + `schedule.rs`).
//!
//! Extracted shape: the caller publishes a job under the state mutex
//! (bumps `epoch`, sets `pending`, `notify_all(work)`), participates
//! in the claim loop itself, then blocks on the `done` condvar until
//! `pending == 0`. Each pool worker loops: under the mutex, wait for
//! a fresh epoch (or shutdown), run the claim loop, then decrement
//! `pending` and notify `done` when it hits zero. Claiming follows
//! `claim_guided`: one relaxed `fetch_update` takes
//! `remaining / (GUIDED_DECAY * nthreads)` rows, at least one, until
//! `nrows` is exhausted. Two dispatch epochs run back-to-back, so an
//! epoch-tracking bug (a worker re-running or skipping a dispatch)
//! is observable.
//!
//! Checked properties:
//! * **No lost or double-claimed chunk**: every row `0..NROWS` is
//!   claimed exactly once per epoch (oracle row counters), and no
//!   claim is empty.
//! * **Barrier soundness**: when the caller passes the `pending == 0`
//!   barrier, every worker has finished its task for that epoch —
//!   the exact guarantee the engine's lifetime-erasing `Job` borrow
//!   rests on.
//! * **Park/wake liveness**: the whole two-epoch dispatch terminates;
//!   a missed wakeup surfaces as a deadlock.
//!
//! Seeded mutants ([`HandshakeMutant`]): a claim-bound off-by-one
//! (`start <= nrows` admits an empty claim), a non-atomic
//! load-then-store claim (lost update → double-claimed rows), an
//! early `pending` decrement (caller can pass the barrier while a
//! worker still runs), and a wait-before-check worker loop (misses a
//! notify that raced ahead of it → deadlock).
//!
//! Lock coverage (read by the static lock-order audit, policy 13 —
//! the only multi-lock chain in the engine is `dispatch` held across
//! the `state` publish and the `done` barrier, which this model's
//! caller thread reproduces):
//!
//! * models-lock: engine.dispatch
//! * models-lock: engine.shared.state

use std::rc::Rc;

use crate::exec::{CondvarId, Ctx, Instance, ModelThread, MutexId, OracleId, Step, World};
use crate::mem::{Loc, MOrd};

/// Rows scheduled per epoch.
pub const NROWS: u64 = 4;
/// Team size: the caller plus one pool worker.
pub const NTHREADS: u64 = 2;
/// Dispatch epochs run back-to-back.
pub const EPOCHS: u64 = 2;
/// Mirrors `spmv_kernels::schedule::GUIDED_DECAY`.
pub const GUIDED_DECAY: u64 = 2;

/// Seeded bugs the checker must flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeMutant {
    /// `start <= nrows` instead of `start < nrows` in the claim
    /// predicate: the loop hands out an empty chunk at the boundary.
    ClaimBoundOffByOne,
    /// The claim is a relaxed load followed by a separate relaxed
    /// store instead of one `fetch_update`: two threads can read the
    /// same `start` and double-claim the chunk.
    NonAtomicClaim,
    /// The worker decrements `pending` *before* running its task, so
    /// the caller can pass the barrier (and invalidate the borrowed
    /// job) while the worker still executes it.
    EarlyPendingDecrement,
    /// The worker waits on the condvar once *before* checking the
    /// epoch predicate: a notify that fires before the wait is lost
    /// and the dispatch deadlocks.
    WaitBeforeCheck,
}

struct Shared {
    m: MutexId,
    work: CondvarId,
    done: CondvarId,
    /// Mutex-protected dispatch state (modeled as atomics for the
    /// view machinery; every access happens with the mutex held, so
    /// relaxed shadow operations observe the newest store).
    epoch: Loc,
    pending: Loc,
    shutdown: Loc,
    /// Claim counter, reset per epoch by the caller before publish.
    next: Vec<Loc>,
    /// Oracle: per-epoch, per-row claim counts.
    rows: Vec<Vec<OracleId>>,
    /// Oracle: per-epoch count of workers that finished their task.
    task_done: Vec<OracleId>,
}

/// One guided claim against epoch `e`'s counter; returns the claimed
/// range or `None` when exhausted. Mirrors `claim_guided`.
fn claim(
    ctx: &mut Ctx<'_>,
    sh: &Shared,
    e: usize,
    mutant: Option<HandshakeMutant>,
    staged: &mut Option<u64>,
) -> ClaimStep {
    let take = |start: u64| ((NROWS - start) / (GUIDED_DECAY * NTHREADS)).max(1);
    match mutant {
        Some(HandshakeMutant::NonAtomicClaim) => {
            // Two separate shared operations: the lost-update window.
            match staged.take() {
                None => {
                    let start = ctx.load(sh.next[e], MOrd::Relaxed);
                    if start >= NROWS {
                        return ClaimStep::Exhausted;
                    }
                    *staged = Some(start);
                    ClaimStep::Pending
                }
                Some(start) => {
                    ctx.store(sh.next[e], start + take(start), MOrd::Relaxed);
                    ClaimStep::Claimed(start..(start + take(start)).min(NROWS))
                }
            }
        }
        _ => {
            let bound_incl = mutant == Some(HandshakeMutant::ClaimBoundOffByOne);
            let (start, updated) = ctx.rmw(sh.next[e], MOrd::Relaxed, |start| {
                let in_bounds = if bound_incl { start <= NROWS } else { start < NROWS };
                in_bounds.then(|| start + take(start))
            });
            if updated {
                ClaimStep::Claimed(start..(start + take(start)).min(NROWS))
            } else {
                ClaimStep::Exhausted
            }
        }
    }
}

enum ClaimStep {
    Claimed(std::ops::Range<u64>),
    /// Mid-claim (non-atomic mutant only): call again to finish.
    Pending,
    Exhausted,
}

/// Marks a claimed range in the oracle and checks it is non-empty.
fn record_claim(ctx: &mut Ctx<'_>, sh: &Shared, e: usize, range: std::ops::Range<u64>) {
    if range.is_empty() {
        ctx.fail(format!("empty claim {range:?} handed out in epoch {}", e + 1));
        return;
    }
    for row in range {
        ctx.oracle_add(sh.rows[e][row as usize], 1);
    }
}

struct Caller {
    sh: Rc<Shared>,
    mutant: Option<HandshakeMutant>,
    pc: u8,
    epoch: u64,
    staged: Option<u64>,
}

impl ModelThread for Caller {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Publish the next epoch's job.
            0 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                self.epoch += 1;
                ctx.store(sh.epoch, self.epoch, MOrd::Relaxed);
                ctx.store(sh.pending, NTHREADS - 1, MOrd::Relaxed);
                ctx.notify_all(sh.work);
                ctx.unlock(sh.m);
                self.pc = 1;
                Step::Ready
            }
            // Participate in the claim loop as worker 0.
            1 => {
                let e = (self.epoch - 1) as usize;
                match claim(ctx, &sh, e, self.mutant, &mut self.staged) {
                    ClaimStep::Claimed(range) => record_claim(ctx, &sh, e, range),
                    ClaimStep::Pending => {}
                    ClaimStep::Exhausted => self.pc = 2,
                }
                Step::Ready
            }
            // Barrier: wait until the pool worker finished.
            2 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                self.pc = 3;
                Step::Ready
            }
            3 => {
                let pending = ctx.load(sh.pending, MOrd::Relaxed);
                if pending > 0 {
                    ctx.cond_wait(sh.done, sh.m);
                    self.pc = 2; // re-acquire, re-check
                    return Step::Blocked;
                }
                ctx.unlock(sh.m);
                // Past the barrier: the job borrow is about to die —
                // every worker task of this epoch must have finished.
                let e = (self.epoch - 1) as usize;
                if ctx.oracle_get(sh.task_done[e]) != (NTHREADS - 1) as i64 {
                    ctx.fail(format!(
                        "caller passed the pending==0 barrier of epoch {} with {}/{} worker task(s) finished",
                        self.epoch,
                        ctx.oracle_get(sh.task_done[e]),
                        NTHREADS - 1
                    ));
                    return Step::Done;
                }
                self.pc = if self.epoch < EPOCHS { 0 } else { 4 };
                Step::Ready
            }
            // Shut the team down.
            4 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                ctx.store(sh.shutdown, 1, MOrd::Relaxed);
                ctx.notify_all(sh.work);
                ctx.unlock(sh.m);
                Step::Done
            }
            _ => Step::Done,
        }
    }
}

struct Worker {
    sh: Rc<Shared>,
    mutant: Option<HandshakeMutant>,
    pc: u8,
    seen_epoch: u64,
    epoch: u64,
    staged: Option<u64>,
    /// WaitBeforeCheck: whether the mutant's unconditional first wait
    /// of the current parking cycle already happened.
    waited_first: bool,
}

impl ModelThread for Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let sh = Rc::clone(&self.sh);
        match self.pc {
            // Parked: wait for a fresh epoch or shutdown.
            0 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                self.pc = 1;
                Step::Ready
            }
            1 => {
                if self.mutant == Some(HandshakeMutant::WaitBeforeCheck) && !self.waited_first {
                    // Seeded bug: wait once before looking at the
                    // predicate. A notify that already fired is lost.
                    self.waited_first = true;
                    ctx.cond_wait(sh.work, sh.m);
                    self.pc = 0;
                    return Step::Blocked;
                }
                if ctx.load(sh.shutdown, MOrd::Relaxed) == 1 {
                    ctx.unlock(sh.m);
                    return Step::Done;
                }
                let epoch = ctx.load(sh.epoch, MOrd::Relaxed);
                if epoch != self.seen_epoch {
                    self.seen_epoch = epoch;
                    self.epoch = epoch;
                    ctx.unlock(sh.m);
                    if self.mutant == Some(HandshakeMutant::EarlyPendingDecrement) {
                        self.pc = 4; // decrement first, run the task after
                    } else {
                        self.pc = 2;
                    }
                    return Step::Ready;
                }
                ctx.cond_wait(sh.work, sh.m);
                self.pc = 0; // re-acquire, re-check
                Step::Blocked
            }
            // The task: drain the claim loop.
            2 => {
                let e = (self.epoch - 1) as usize;
                match claim(ctx, &sh, e, self.mutant, &mut self.staged) {
                    ClaimStep::Claimed(range) => record_claim(ctx, &sh, e, range),
                    ClaimStep::Pending => {}
                    ClaimStep::Exhausted => {
                        ctx.oracle_add(sh.task_done[e], 1);
                        self.pc = 3;
                    }
                }
                Step::Ready
            }
            // Report completion.
            3 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                let pending = ctx.load(sh.pending, MOrd::Relaxed);
                ctx.store(sh.pending, pending - 1, MOrd::Relaxed);
                if pending - 1 == 0 {
                    ctx.notify_all(sh.done);
                }
                ctx.unlock(sh.m);
                self.waited_first = false;
                self.pc = 0; // back to the parking loop
                Step::Ready
            }
            // EarlyPendingDecrement: the seeded wrong order — report
            // completion first, then run the task.
            4 => {
                if !ctx.lock(sh.m) {
                    return Step::Blocked;
                }
                let pending = ctx.load(sh.pending, MOrd::Relaxed);
                ctx.store(sh.pending, pending - 1, MOrd::Relaxed);
                if pending - 1 == 0 {
                    ctx.notify_all(sh.done);
                }
                ctx.unlock(sh.m);
                self.pc = 5;
                Step::Ready
            }
            5 => {
                let e = (self.epoch - 1) as usize;
                match claim(ctx, &sh, e, self.mutant, &mut self.staged) {
                    ClaimStep::Claimed(range) => record_claim(ctx, &sh, e, range),
                    ClaimStep::Pending => {}
                    ClaimStep::Exhausted => {
                        ctx.oracle_add(sh.task_done[e], 1);
                        self.waited_first = false;
                        self.pc = 0;
                    }
                }
                Step::Ready
            }
            _ => Step::Done,
        }
    }
}

/// Builds the handshake model instance (optionally with a seeded
/// bug).
pub fn instance(world: &mut World, mutant: Option<HandshakeMutant>) -> Instance {
    let m = world.mutex();
    let work = world.condvar();
    let done = world.condvar();
    let epoch = world.alloc("epoch", 0);
    let pending = world.alloc("pending", 0);
    let shutdown = world.alloc("shutdown", 0);
    let next = (0..EPOCHS).map(|_| world.alloc("next", 0)).collect();
    let rows: Vec<Vec<OracleId>> =
        (0..EPOCHS).map(|_| (0..NROWS).map(|_| world.oracle("row")).collect()).collect();
    let task_done: Vec<OracleId> = (0..EPOCHS).map(|_| world.oracle("task_done")).collect();
    let rows_for_check = rows.clone();
    let sh = Rc::new(Shared { m, work, done, epoch, pending, shutdown, next, rows, task_done });

    let threads: Vec<Box<dyn ModelThread>> = vec![
        Box::new(Caller { sh: Rc::clone(&sh), mutant, pc: 0, epoch: 0, staged: None }),
        Box::new(Worker {
            sh,
            mutant,
            pc: 0,
            seen_epoch: 0,
            epoch: 0,
            staged: None,
            waited_first: false,
        }),
    ];
    Instance {
        threads,
        final_check: Box::new(move |w| {
            for (e, rows) in rows_for_check.iter().enumerate() {
                for (row, id) in rows.iter().enumerate() {
                    let n = w.oracle_value(*id);
                    if n != 1 {
                        return Err(format!(
                            "epoch {}: row {row} claimed {n} time(s), expected exactly once",
                            e + 1
                        ));
                    }
                }
            }
            Ok(())
        }),
    }
}
