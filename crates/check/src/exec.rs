//! One controlled execution: model threads stepped one shared
//! operation at a time under a replayed choice string.
//!
//! The explorer ([`crate::explore`]) owns a stack of *choice points*
//! (which thread to step next; which store a load observes). An
//! [`Execution`] replays that prefix deterministically and, past its
//! end, defaults every new choice to option 0 while recording how
//! many alternatives existed — the explorer then backtracks through
//! the recorded stack, depth-first, until no untried option remains.
//!
//! Blocking primitives (the shadow [`MutexId`]/[`CondvarId`] pair
//! mirroring the engine's dispatch handshake) are *scheduler-level*:
//! lock, unlock, wait and notify are sequentially consistent, exactly
//! as `std::sync::Mutex`/`Condvar` are, and a blocked thread is
//! simply not offered to the scheduler until the primitive frees it.
//! Condition variables have **no spurious wakeups** in the model:
//! a waiter runs again only after a notify, so a protocol that relies
//! on re-checking its predicate in a loop still passes, while one
//! that can miss a wakeup deadlocks — and the checker reports it.
//!
//! Besides shadow atomics, models get *oracle cells*
//! ([`Ctx::oracle_add`] etc.): plain sequentially-consistent
//! counters invisible to the modeled protocol, used only to state
//! properties ("each row claimed exactly once", "events balanced").

use crate::mem::{Loc, MOrd, Memory, View};

/// Outcome of stepping a model thread once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed (at most) one shared operation and can be
    /// stepped again.
    Ready,
    /// The thread is blocked on a mutex or condvar; the step made no
    /// progress and will be retried when the primitive frees it.
    Blocked,
    /// The thread finished.
    Done,
}

/// A model thread: a hand-rolled state machine whose `step` performs
/// at most one shared-memory or synchronization operation per call,
/// so the scheduler can interleave at every point that matters.
pub trait ModelThread {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step;
}

/// Handle to a shadow mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexId(usize);

/// Handle to a shadow condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondvarId(usize);

/// Handle to an oracle cell (property-checking state, not protocol
/// state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleId(usize);

#[derive(Debug, Clone)]
struct MutexState {
    /// Holding thread, if any.
    owner: Option<usize>,
    /// View released by the last unlock; acquired by the next lock.
    msg: View,
}

/// One recorded choice point.
#[derive(Debug, Clone, Copy)]
pub struct Choice {
    pub taken: usize,
    pub total: usize,
}

/// Replays a prefix of choices, then defaults to option 0, recording
/// every decision.
#[derive(Debug, Default)]
pub struct Controller {
    pub choices: Vec<Choice>,
    cursor: usize,
}

impl Controller {
    pub fn replay(prefix: Vec<Choice>) -> Controller {
        Controller { choices: prefix, cursor: 0 }
    }

    /// Picks one of `total` options: the replayed value inside the
    /// prefix, option 0 (recorded) past its end.
    fn choose(&mut self, total: usize) -> usize {
        debug_assert!(total >= 1);
        if self.cursor < self.choices.len() {
            let c = self.choices[self.cursor];
            debug_assert_eq!(c.total, total, "divergent replay");
            self.cursor += 1;
            c.taken
        } else {
            self.choices.push(Choice { taken: 0, total });
            self.cursor += 1;
            0
        }
    }
}

/// Why an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecEnd {
    /// Every thread ran to completion and the final check passed.
    Completed,
    /// A property failed (message carries the details).
    Violation(String),
    /// No thread is runnable but not all are done.
    Deadlock,
    /// The per-execution step budget ran out (livelock or an
    /// under-provisioned bound).
    StepBudget,
}

/// The world one execution runs in. Models allocate their locations
/// and primitives in their factory, then threads operate through
/// [`Ctx`].
#[derive(Debug, Default)]
pub struct World {
    pub mem: Memory,
    mutexes: Vec<MutexState>,
    condvar_count: usize,
    oracle: Vec<i64>,
    oracle_names: Vec<&'static str>,
}

impl World {
    pub fn alloc(&mut self, name: &'static str, init: u64) -> Loc {
        self.mem.alloc(name, init)
    }

    pub fn mutex(&mut self) -> MutexId {
        self.mutexes.push(MutexState { owner: None, msg: Vec::new() });
        MutexId(self.mutexes.len() - 1)
    }

    pub fn condvar(&mut self) -> CondvarId {
        self.condvar_count += 1;
        CondvarId(self.condvar_count - 1)
    }

    pub fn oracle(&mut self, name: &'static str) -> OracleId {
        self.oracle.push(0);
        self.oracle_names.push(name);
        OracleId(self.oracle.len() - 1)
    }

    pub fn oracle_value(&self, id: OracleId) -> i64 {
        self.oracle[id.0]
    }

    pub fn oracle_name(&self, id: OracleId) -> &'static str {
        self.oracle_names[id.0]
    }
}

/// What a thread is currently able to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    Done,
}

/// Per-step context handed to a model thread. All shared operations
/// go through here so the execution can record a human-readable trace
/// and branch on load values.
pub struct Ctx<'a> {
    world: &'a mut World,
    controller: &'a mut Controller,
    tid: usize,
    trace: &'a mut Vec<String>,
    violation: &'a mut Option<String>,
    /// Status changes requested by the step (blocking, wakeups).
    status: &'a mut Vec<ThreadStatus>,
}

impl Ctx<'_> {
    /// This thread's index.
    pub fn tid(&self) -> usize {
        self.tid
    }

    fn log(&mut self, msg: String) {
        self.trace.push(format!("t{}: {msg}", self.tid));
    }

    /// Atomic load; branches over every store the memory model lets
    /// this thread observe.
    pub fn load(&mut self, loc: Loc, ord: MOrd) -> u64 {
        let range = self.world.mem.readable(self.tid, loc);
        let options = range.len();
        let pick = range.start + self.controller.choose(options);
        let v = self.world.mem.load_at(self.tid, loc, pick, ord);
        let name = self.world.mem.name(loc);
        self.log(format!("load {name} -> {v} ({ord:?}, mo {pick}, {options} readable)"));
        v
    }

    /// Atomic store.
    pub fn store(&mut self, loc: Loc, value: u64, ord: MOrd) {
        self.world.mem.store(self.tid, loc, value, ord);
        let name = self.world.mem.name(loc);
        self.log(format!("store {name} = {value} ({ord:?})"));
    }

    /// Atomic read-modify-write (`fetch_update` shape): `f` maps the
    /// current value to `Some(new)` or `None` (no write). Returns
    /// `(old, updated)`.
    pub fn rmw(&mut self, loc: Loc, ord: MOrd, f: impl FnOnce(u64) -> Option<u64>) -> (u64, bool) {
        let (old, updated) = self.world.mem.rmw(self.tid, loc, ord, f);
        let name = self.world.mem.name(loc);
        self.log(format!("rmw {name}: read {old}, updated={updated} ({ord:?})"));
        (old, updated)
    }

    /// Memory fence.
    pub fn fence(&mut self, ord: MOrd) {
        self.world.mem.fence(self.tid, ord);
        self.log(format!("fence ({ord:?})"));
    }

    /// Tries to acquire the shadow mutex. On success the last
    /// unlocker's view transfers (the SC edge a real mutex provides).
    /// On failure the thread blocks; retry the same step when woken.
    #[must_use]
    pub fn lock(&mut self, m: MutexId) -> bool {
        match self.world.mutexes[m.0].owner {
            None => {
                self.world.mutexes[m.0].owner = Some(self.tid);
                let msg = self.world.mutexes[m.0].msg.clone();
                self.world.mem.acquire_view(self.tid, &msg);
                self.log(format!("lock m{}", m.0));
                true
            }
            Some(_) => {
                self.status[self.tid] = ThreadStatus::BlockedMutex(m.0);
                false
            }
        }
    }

    /// Releases the shadow mutex and wakes its blocked acquirers.
    pub fn unlock(&mut self, m: MutexId) {
        assert_eq!(self.world.mutexes[m.0].owner, Some(self.tid), "unlock by non-owner");
        self.world.mutexes[m.0].owner = None;
        self.world.mutexes[m.0].msg = self.world.mem.release_view(self.tid);
        for st in self.status.iter_mut() {
            if *st == ThreadStatus::BlockedMutex(m.0) {
                *st = ThreadStatus::Runnable;
            }
        }
        self.log(format!("unlock m{}", m.0));
    }

    /// Atomically releases `m` and blocks on `c` (the first half of
    /// `Condvar::wait`). The caller's state machine must re-acquire
    /// `m` in its next state once woken; the model has **no spurious
    /// wakeups**, so a missed notify is a deadlock the checker sees.
    pub fn cond_wait(&mut self, c: CondvarId, m: MutexId) {
        assert_eq!(self.world.mutexes[m.0].owner, Some(self.tid), "wait without the lock");
        self.world.mutexes[m.0].owner = None;
        self.world.mutexes[m.0].msg = self.world.mem.release_view(self.tid);
        for st in self.status.iter_mut() {
            if *st == ThreadStatus::BlockedMutex(m.0) {
                *st = ThreadStatus::Runnable;
            }
        }
        self.status[self.tid] = ThreadStatus::BlockedCondvar(c.0);
        self.log(format!("wait c{} (released m{})", c.0, m.0));
    }

    /// Wakes every thread blocked on `c` (they re-contend for their
    /// mutex in their next step).
    pub fn notify_all(&mut self, c: CondvarId) {
        let mut woke = 0;
        for st in self.status.iter_mut() {
            if *st == ThreadStatus::BlockedCondvar(c.0) {
                *st = ThreadStatus::Runnable;
                woke += 1;
            }
        }
        self.log(format!("notify_all c{} (woke {woke})", c.0));
    }

    /// Adds to an oracle cell (property state; sequentially
    /// consistent and invisible to the modeled protocol).
    pub fn oracle_add(&mut self, id: OracleId, delta: i64) {
        self.world.oracle[id.0] += delta;
    }

    /// Reads an oracle cell.
    pub fn oracle_get(&self, id: OracleId) -> i64 {
        self.world.oracle[id.0]
    }

    /// Reports a property violation; the execution stops after this
    /// step and the explorer surfaces the interleaving trace.
    pub fn fail(&mut self, msg: impl Into<String>) {
        let msg = msg.into();
        self.log(format!("VIOLATION: {msg}"));
        if self.violation.is_none() {
            *self.violation = Some(msg);
        }
    }
}

/// Post-execution property over the oracle state, run after all
/// threads complete.
pub type FinalCheck = Box<dyn Fn(&World) -> Result<(), String>>;

/// A freshly constructed model instance: its threads plus a final
/// property check over the oracle state, run after all threads
/// complete.
pub struct Instance {
    pub threads: Vec<Box<dyn ModelThread>>,
    pub final_check: FinalCheck,
}

/// Result of one execution.
pub struct ExecResult {
    pub end: ExecEnd,
    pub steps: usize,
    pub trace: Vec<String>,
    pub choices: Vec<Choice>,
}

/// Runs one execution of `make`'s instance under `controller`,
/// bounding context switches at `max_preemptions` and total steps at
/// `max_steps`.
pub fn run_once(
    make: &dyn Fn(&mut World) -> Instance,
    mut controller: Controller,
    max_preemptions: usize,
    max_steps: usize,
) -> ExecResult {
    let mut world = World::default();
    let mut instance = make(&mut world);
    let n = instance.threads.len();
    world.mem.set_threads(n);

    let mut status = vec![ThreadStatus::Runnable; n];
    let mut trace = Vec::new();
    let mut violation: Option<String> = None;
    let mut steps = 0usize;
    let mut last: Option<usize> = None;
    let mut preemptions = 0usize;

    let end = loop {
        let runnable: Vec<usize> =
            (0..n).filter(|&t| status[t] == ThreadStatus::Runnable).collect();
        if runnable.is_empty() {
            if status.iter().all(|s| *s == ThreadStatus::Done) {
                match (instance.final_check)(&world) {
                    Ok(()) => break ExecEnd::Completed,
                    Err(msg) => {
                        trace.push(format!("final check: VIOLATION: {msg}"));
                        break ExecEnd::Violation(msg);
                    }
                }
            }
            break ExecEnd::Deadlock;
        }
        if steps >= max_steps {
            break ExecEnd::StepBudget;
        }

        // Scheduling choice, preemption-bounded: once the budget is
        // spent, a thread that can keep running keeps running.
        let options: Vec<usize> = match last {
            Some(prev) if runnable.contains(&prev) && preemptions >= max_preemptions => {
                vec![prev]
            }
            _ => runnable.clone(),
        };
        let tid = options[controller.choose(options.len())];
        if let Some(prev) = last {
            if prev != tid && runnable.contains(&prev) {
                preemptions += 1;
            }
        }

        let step = {
            let mut ctx = Ctx {
                world: &mut world,
                controller: &mut controller,
                tid,
                trace: &mut trace,
                violation: &mut violation,
                status: &mut status,
            };
            instance.threads[tid].step(&mut ctx)
        };
        steps += 1;
        match step {
            Step::Done => {
                status[tid] = ThreadStatus::Done;
                last = None;
            }
            Step::Blocked => {
                // The step set its own blocked status via Ctx.
                last = None;
            }
            Step::Ready => last = Some(tid),
        }
        if let Some(msg) = violation.take() {
            break ExecEnd::Violation(msg);
        }
    };

    ExecResult { end, steps, trace, choices: controller.choices }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each do one relaxed store to a distinct location.
    struct OneStore {
        loc: Loc,
        val: u64,
        done: bool,
    }
    impl ModelThread for OneStore {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if self.done {
                return Step::Done;
            }
            ctx.store(self.loc, self.val, MOrd::Relaxed);
            self.done = true;
            Step::Done
        }
    }

    #[test]
    fn trivial_model_completes() {
        let make = |w: &mut World| {
            let a = w.alloc("a", 0);
            Instance {
                threads: vec![
                    Box::new(OneStore { loc: a, val: 1, done: false }),
                    Box::new(OneStore { loc: a, val: 2, done: false }),
                ],
                final_check: Box::new(|_| Ok(())),
            }
        };
        let r = run_once(&make, Controller::default(), 4, 100);
        assert_eq!(r.end, ExecEnd::Completed);
        assert!(r.steps >= 2);
    }

    /// A thread that locks a mutex another thread never releases.
    struct LockForever {
        m: MutexId,
        pc: u8,
    }
    impl ModelThread for LockForever {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.pc {
                0 => {
                    if !ctx.lock(self.m) {
                        return Step::Blocked;
                    }
                    self.pc = 1;
                    Step::Ready
                }
                // Holds the lock and waits on a condvar nobody
                // notifies.
                _ => {
                    ctx.cond_wait(CondvarId(0), self.m);
                    Step::Blocked
                }
            }
        }
    }

    #[test]
    fn missed_wakeup_is_a_deadlock() {
        let make = |w: &mut World| {
            let m = w.mutex();
            let _c = w.condvar();
            Instance {
                threads: vec![
                    Box::new(LockForever { m, pc: 0 }),
                    Box::new(LockForever { m, pc: 0 }),
                ],
                final_check: Box::new(|_| Ok(())),
            }
        };
        let r = run_once(&make, Controller::default(), 4, 100);
        assert_eq!(r.end, ExecEnd::Deadlock);
    }
}
