//! Depth-first exploration of every schedule and every weak-memory
//! read a model admits, under a bounded-preemption cut.
//!
//! The search is *stateless* (CHESS-style): instead of snapshotting
//! world state at each branch, the explorer re-runs the model from
//! scratch under a recorded choice prefix, then backtracks the last
//! not-yet-exhausted choice. Executions are cheap (tens of steps), so
//! replay costs less than cloning store histories and view maps at
//! every step — and the recorded choice string doubles as a
//! counterexample the checker can print.
//!
//! Two cuts keep the state space finite and small:
//!
//! * **Bounded preemptions** — a scheduling choice that switches away
//!   from a thread that could have kept running counts against a
//!   budget (default [`Config::DEFAULT_PREEMPTIONS`]); past it, the
//!   running thread runs on until it blocks or finishes. Context-
//!   switch-bounded search finds practically all protocol bugs at
//!   small bounds (Musuvathi & Qadeer, CHESS), and every interleaving
//!   the engine's two-or-three-step windows admit fits well inside
//!   it. Voluntary switches (block, completion) are always free.
//! * **Step budget** — a per-execution ceiling that converts a
//!   livelocked model (e.g. a claim loop that stops advancing) into a
//!   reported failure instead of a hung checker.

use crate::exec::{run_once, Choice, Controller, ExecEnd, Instance, World};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Preemption budget per execution.
    pub max_preemptions: usize,
    /// Step budget per execution (livelock cut-off).
    pub max_steps: usize,
    /// Hard ceiling on explored executions; exceeding it is reported
    /// as [`Outcome::BudgetExhausted`], never silently truncated.
    pub max_executions: usize,
}

impl Config {
    pub const DEFAULT_PREEMPTIONS: usize = 3;

    pub fn new() -> Config {
        Config {
            max_preemptions: Config::DEFAULT_PREEMPTIONS,
            max_steps: 2_000,
            max_executions: 3_000_000,
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::new()
    }
}

/// Result of exploring one model.
#[derive(Debug)]
pub enum Outcome {
    /// Every execution within the cut completed and passed all
    /// checks.
    Pass(Stats),
    /// Some execution failed; the trace is the interleaving, one line
    /// per shared operation.
    Fail(Failure),
    /// `max_executions` was hit before the space was exhausted.
    BudgetExhausted(Stats),
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    pub executions: usize,
    pub max_depth: usize,
    pub total_steps: usize,
}

/// A found violation plus the execution that exhibits it.
#[derive(Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    pub trace: Vec<String>,
    pub stats: Stats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An explicit property check failed.
    Property,
    /// All threads blocked with work remaining.
    Deadlock,
    /// The step budget ran out (livelock or an undersized bound).
    Livelock,
}

impl Failure {
    /// Renders the failure with its interleaving, ready for stderr.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:?}: {}\n", self.kind, self.message));
        out.push_str("interleaving (one line per shared operation):\n");
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "found after {} execution(s), {} step(s) total\n",
            self.stats.executions, self.stats.total_steps
        ));
        out
    }
}

/// Exhaustively explores `make`'s model under `cfg`.
pub fn explore(make: &dyn Fn(&mut World) -> Instance, cfg: Config) -> Outcome {
    let mut prefix: Vec<Choice> = Vec::new();
    let mut stats = Stats::default();

    loop {
        if stats.executions >= cfg.max_executions {
            return Outcome::BudgetExhausted(stats);
        }
        let result =
            run_once(make, Controller::replay(prefix.clone()), cfg.max_preemptions, cfg.max_steps);
        stats.executions += 1;
        stats.total_steps += result.steps;
        stats.max_depth = stats.max_depth.max(result.choices.len());

        match result.end {
            ExecEnd::Completed => {}
            ExecEnd::Violation(message) => {
                return Outcome::Fail(Failure {
                    kind: FailureKind::Property,
                    message,
                    trace: result.trace,
                    stats,
                });
            }
            ExecEnd::Deadlock => {
                return Outcome::Fail(Failure {
                    kind: FailureKind::Deadlock,
                    message: "all remaining threads are blocked".to_string(),
                    trace: result.trace,
                    stats,
                });
            }
            ExecEnd::StepBudget => {
                return Outcome::Fail(Failure {
                    kind: FailureKind::Livelock,
                    message: format!("step budget ({}) exhausted", cfg.max_steps),
                    trace: result.trace,
                    stats,
                });
            }
        }

        // Depth-first backtrack: advance the deepest choice with an
        // untried option, drop everything after it.
        prefix = result.choices;
        loop {
            match prefix.pop() {
                None => return Outcome::Pass(stats),
                Some(c) if c.taken + 1 < c.total => {
                    prefix.push(Choice { taken: c.taken + 1, total: c.total });
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Ctx, ModelThread, Step};
    use crate::mem::{Loc, MOrd};

    /// Classic store-buffering litmus: with relaxed operations both
    /// threads may read 0 — the explorer must find that execution.
    struct Sb {
        my: Loc,
        other: Loc,
        seen: OracleSlot,
        pc: u8,
    }
    #[derive(Clone, Copy)]
    struct OracleSlot(crate::exec::OracleId);

    impl ModelThread for Sb {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.pc {
                0 => {
                    ctx.store(self.my, 1, MOrd::Relaxed);
                    self.pc = 1;
                    Step::Ready
                }
                _ => {
                    let v = ctx.load(self.other, MOrd::Relaxed);
                    if v == 0 {
                        ctx.oracle_add(self.seen.0, 1);
                    }
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn explorer_finds_store_buffering() {
        // Fail when BOTH threads read 0, proving the explorer reaches
        // the weak outcome SC interleavings cannot produce.
        let make = |w: &mut World| {
            let x = w.alloc("x", 0);
            let y = w.alloc("y", 0);
            let zeros = w.oracle("zeros");
            Instance {
                threads: vec![
                    Box::new(Sb { my: x, other: y, seen: OracleSlot(zeros), pc: 0 }),
                    Box::new(Sb { my: y, other: x, seen: OracleSlot(zeros), pc: 0 }),
                ],
                final_check: Box::new(move |w| {
                    if w.oracle_value(zeros) == 2 {
                        Err("both threads read 0 (store buffering)".to_string())
                    } else {
                        Ok(())
                    }
                }),
            }
        };
        match explore(&make, Config::new()) {
            Outcome::Fail(f) => {
                assert_eq!(f.kind, FailureKind::Property);
                assert!(f.message.contains("store buffering"));
            }
            other => panic!("expected the weak outcome, got {other:?}"),
        }
    }

    #[test]
    fn explorer_exhausts_clean_models() {
        struct Inc {
            c: Loc,
            done: bool,
        }
        impl ModelThread for Inc {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                if self.done {
                    return Step::Done;
                }
                ctx.rmw(self.c, MOrd::Relaxed, |v| Some(v + 1));
                self.done = true;
                Step::Done
            }
        }
        let make = |w: &mut World| {
            let c = w.alloc("c", 0);
            Instance {
                threads: vec![
                    Box::new(Inc { c, done: false }),
                    Box::new(Inc { c, done: false }),
                    Box::new(Inc { c, done: false }),
                ],
                final_check: Box::new(move |w| {
                    // RMWs never lose updates: the mo history length
                    // is 1 (init) + 3.
                    let last = w.mem.readable(0, c).end;
                    if last == 4 {
                        Ok(())
                    } else {
                        Err(format!("lost update: {last} stores"))
                    }
                }),
            }
        };
        match explore(&make, Config::new()) {
            Outcome::Pass(stats) => assert!(stats.executions >= 6, "{stats:?}"),
            other => panic!("expected pass, got {other:?}"),
        }
    }
}
