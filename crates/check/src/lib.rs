//! `spmv-check`: an in-tree, dependency-free concurrency model
//! checker for the repository's lock-free core.
//!
//! The crate is a miniature stateless model checker in the spirit of
//! `loom`: protocols are *extracted* into small state-machine models
//! over shadow atomics ([`mem`]), a controlled scheduler replays and
//! enumerates interleavings ([`exec`]), and a depth-first explorer
//! with a bounded-preemption cut walks the whole space ([`explore`]).
//! The three modeled protocols — the `TraceRing` seqlock, the
//! `ExecEngine` dispatch handshake with its guided claim loop, and
//! the `publish_ns = 0` disabled-tracer fast path — live in
//! [`models`], each alongside seeded mutants the checker must flag.
//!
//! # Memory model
//!
//! [`mem`] implements a view-based operational model of the
//! promise-free release/acquire fragment of C11 (the fragment the
//! modeled code uses): per-location modification-order store
//! histories carrying message views, per-thread current/acquire/
//! release views, release/acquire fences, and RMWs that extend
//! release sequences. It admits store buffering and stale reads —
//! the reorderings Relaxed permits — but not load buffering or
//! out-of-thin-air values, and `SeqCst` is deliberately absent
//! (nothing in the modeled core uses it). See `DESIGN.md` §10 for
//! the coverage argument.
//!
//! # Entry point
//!
//! `cargo xtask check` drives [`models::protocols`] through
//! [`explore::explore`]; each real model must exhaust its space
//! cleanly and each mutant must produce a [`explore::Failure`] whose
//! rendered interleaving is the counterexample shown to the
//! developer.

pub mod exec;
pub mod explore;
pub mod mem;
pub mod models;

pub use exec::{Ctx, Instance, ModelThread, Step, World};
pub use explore::{explore, Config, Failure, FailureKind, Outcome, Stats};
pub use mem::{Loc, MOrd};
