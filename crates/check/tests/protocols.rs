//! The checker's own regression suite: every real protocol model must
//! exhaust its interleaving space cleanly, and every seeded mutant
//! must be flagged with a concrete counterexample trace.

use spmv_check::{explore, models, Config, Outcome};

#[test]
fn real_protocols_pass_exhaustively() {
    for proto in models::protocols() {
        match explore(&proto.build, Config::new()) {
            Outcome::Pass(stats) => {
                assert!(
                    stats.executions > 1,
                    "{}: expected a non-trivial interleaving space, got {stats:?}",
                    proto.name
                );
            }
            Outcome::Fail(f) => {
                panic!("{}: real model flagged:\n{}", proto.name, f.render())
            }
            Outcome::BudgetExhausted(stats) => {
                panic!("{}: execution budget exhausted ({stats:?})", proto.name)
            }
        }
    }
}

#[test]
fn every_seeded_mutant_is_flagged() {
    for proto in models::protocols() {
        assert!(!proto.mutants.is_empty(), "{}: no seeded mutants", proto.name);
        for mutant in proto.mutants {
            match explore(&mutant.build, Config::new()) {
                Outcome::Fail(f) => {
                    assert!(
                        !f.trace.is_empty(),
                        "{}/{}: failure carries no interleaving trace",
                        proto.name,
                        mutant.name
                    );
                }
                other => panic!(
                    "{}/{}: seeded mutant NOT flagged ({:?}) — the checker lost its teeth",
                    proto.name,
                    mutant.name,
                    match other {
                        Outcome::Pass(s) | Outcome::BudgetExhausted(s) => s,
                        Outcome::Fail(_) => unreachable!(),
                    }
                ),
            }
        }
    }
}

#[test]
fn registry_lookup_is_by_name() {
    assert!(models::find("seqlock").is_some());
    assert!(models::find("handshake").is_some());
    assert!(models::find("publish").is_some());
    assert!(models::find("admission").is_some());
    assert!(models::find("lifecycle").is_some());
    assert!(models::find("no-such-model").is_none());
}
