//! Jacobi (diagonal) preconditioner.
//!
//! The cheapest practical preconditioner; the paper's §IV-D argument
//! is precisely that preconditioned solvers converge in fewer
//! iterations, shrinking the budget available to amortize autotuning
//! overheads.

use spmv_sparse::Csr;

/// Diagonal preconditioner `M⁻¹ = diag(A)⁻¹`.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Builds the preconditioner from a matrix. Zero diagonal entries
    /// fall back to 1 (identity on that row).
    pub fn new(a: &Csr) -> Jacobi {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d.abs() > f64::MIN_POSITIVE { 1.0 / d } else { 1.0 })
            .collect();
        Jacobi { inv_diag }
    }

    /// Applies `z = M⁻¹ r`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "r length");
        assert_eq!(z.len(), self.inv_diag.len(), "z length");
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    /// Problem dimension.
    pub fn len(&self) -> usize {
        self.inv_diag.len()
    }

    /// Whether the preconditioner is empty (0-dimensional).
    pub fn is_empty(&self) -> bool {
        self.inv_diag.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    #[test]
    fn inverts_the_diagonal() {
        let a = gen::banded(20, 2, 1.0, 1).unwrap();
        let m = Jacobi::new(&a);
        let d = a.diagonal();
        let r = vec![1.0; 20];
        let mut z = vec![0.0; 20];
        m.apply(&r, &mut z);
        for i in 0..20 {
            assert!((z[i] - 1.0 / d[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn zero_diagonal_falls_back_to_identity() {
        let a = Csr::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![3.0, 4.0]).unwrap();
        let m = Jacobi::new(&a); // diagonal entries are structurally zero
        let mut z = vec![0.0; 2];
        m.apply(&[5.0, 6.0], &mut z);
        assert_eq!(z, [5.0, 6.0]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}
