//! (Preconditioned) Conjugate Gradient for SPD systems.

use crate::jacobi::Jacobi;
use crate::op::{LinOp, SolveStats};
use crate::vecops::{axpy, dot, norm2, sub_into, xpby};

/// Solves `A x = b` with CG, starting from `x` (used as the initial
/// guess and overwritten with the solution).
///
/// * `precond` — optional Jacobi preconditioner;
/// * `tol` — relative residual target `‖r‖/‖b‖`;
/// * `max_iter` — iteration budget.
///
/// # Panics
/// Panics if the operator is not square or dimensions disagree.
pub fn cg(
    a: &impl LinOp,
    b: &[f64],
    x: &mut [f64],
    precond: Option<&Jacobi>,
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "CG needs a square operator");
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");

    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    let mut ax = vec![0.0; n];
    a.apply(x, &mut ax);
    sub_into(b, &ax, &mut r);

    let mut z = vec![0.0; n];
    let apply_precond = |r: &[f64], z: &mut Vec<f64>| match precond {
        Some(m) => m.apply(r, z),
        None => z.copy_from_slice(r),
    };
    apply_precond(&r, &mut z);

    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut history = Vec::new();
    let mut residual = norm2(&r) / bnorm;
    if residual <= tol {
        return SolveStats { iterations: 0, residual, converged: true, history };
    }

    let mut ap = vec![0.0; n];
    for it in 1..=max_iter {
        a.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or breakdown): stop with what we have.
            return SolveStats { iterations: it - 1, residual, converged: false, history };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        residual = norm2(&r) / bnorm;
        history.push(residual);
        if residual <= tol {
            return SolveStats { iterations: it, residual, converged: true, history };
        }
        apply_precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
    }
    SolveStats { iterations: max_iter, residual, converged: false, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    #[test]
    fn solves_laplacian() {
        let a = gen::stencil_2d(20, 20).unwrap();
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = cg(&a, &b, &mut x, None, 1e-10, 2_000);
        assert!(stats.converged, "residual {}", stats.residual);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        let a = gen::banded(800, 3, 1.0, 5).unwrap();
        // Symmetrize: A + A^T is SPD thanks to diagonal dominance.
        let at = a.transpose();
        let mut coo = a.to_coo();
        for (r, c, v) in at.to_coo().iter() {
            coo.push(r, c, v).unwrap();
        }
        let spd = spmv_sparse::Csr::from_coo(&coo);
        assert!(spd.is_symmetric(1e-10));
        let n = spd.nrows();
        let b = vec![1.0; n];
        let mut x0 = vec![0.0; n];
        let plain = cg(&spd, &b, &mut x0, None, 1e-8, 5_000);
        let m = Jacobi::new(&spd);
        let mut x1 = vec![0.0; n];
        let pre = cg(&spd, &b, &mut x1, Some(&m), 1e-8, 5_000);
        assert!(plain.converged && pre.converged);
        assert!(pre.iterations <= plain.iterations, "{} vs {}", pre.iterations, plain.iterations);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = gen::stencil_2d(5, 5).unwrap();
        let b = vec![0.0; 25];
        let mut x = vec![0.0; 25];
        let stats = cg(&a, &b, &mut x, None, 1e-12, 100);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let a = gen::stencil_2d(30, 30).unwrap();
        let b = vec![1.0; 900];
        let mut x = vec![0.0; 900];
        let stats = cg(&a, &b, &mut x, None, 1e-14, 3);
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.history.len(), 3);
    }

    #[test]
    fn history_is_monotone_for_spd() {
        let a = gen::stencil_2d(15, 15).unwrap();
        let b = vec![1.0; 225];
        let mut x = vec![0.0; 225];
        let stats = cg(&a, &b, &mut x, None, 1e-10, 1_000);
        assert!(stats.converged);
        // CG residuals are not strictly monotone, but the trend must
        // be decreasing: final << initial.
        assert!(stats.history.last().unwrap() < &stats.history[0]);
    }
}
