//! Dominant-eigenpair approximation by the power method.
//!
//! The paper's introduction names "the approximation of eigenvalues
//! of large sparse matrices" as a core SpMV consumer; the power
//! method is its simplest instance — one SpMV per iteration, so every
//! SpMV optimization translates one-for-one into eigensolver
//! throughput.

use crate::op::LinOp;
use crate::vecops::{dot, norm2, scale};

/// Result of a power-method run.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenResult {
    /// Approximated dominant eigenvalue (Rayleigh quotient).
    pub eigenvalue: f64,
    /// Normalised eigenvector approximation.
    pub eigenvector: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final iterate change `‖v_{k+1} − v_k‖`.
    pub delta: f64,
    /// Whether the tolerance was met within the budget.
    pub converged: bool,
}

/// Runs power iteration on `a` from the all-ones start vector.
///
/// * `tol` — convergence threshold on the iterate change;
/// * `max_iter` — iteration budget.
///
/// # Panics
/// Panics if the operator is not square or has zero dimension.
pub fn power_method(a: &impl LinOp, tol: f64, max_iter: usize) -> EigenResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "power method needs a square operator");
    assert!(n > 0, "empty operator");

    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut w = vec![0.0f64; n];
    let mut lambda = 0.0f64;
    let mut delta = f64::INFINITY;
    for it in 1..=max_iter {
        a.apply(&v, &mut w);
        let norm = norm2(&w);
        if norm < f64::MIN_POSITIVE {
            // Hit the null space: report a zero eigenvalue.
            return EigenResult {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it,
                delta,
                converged: true,
            };
        }
        scale(&mut w, 1.0 / norm);
        // Rayleigh quotient with the normalised iterate.
        let mut av = vec![0.0f64; n];
        a.apply(&w, &mut av);
        lambda = dot(&w, &av);
        delta = v
            .iter()
            .zip(&w)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        std::mem::swap(&mut v, &mut w);
        if delta <= tol {
            return EigenResult {
                eigenvalue: lambda,
                eigenvector: v,
                iterations: it,
                delta,
                converged: true,
            };
        }
    }
    EigenResult {
        eigenvalue: lambda,
        eigenvector: v,
        iterations: max_iter,
        delta,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::{Coo, Csr};

    #[test]
    fn diagonal_matrix_dominant_eigenvalue() {
        let mut coo = Coo::new(4, 4).unwrap();
        for (i, d) in [1.0, 3.0, 7.0, 2.0].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let a = Csr::from_coo(&coo);
        let r = power_method(&a, 1e-12, 10_000);
        assert!(r.converged);
        assert!((r.eigenvalue - 7.0).abs() < 1e-6, "{}", r.eigenvalue);
        // Eigenvector concentrates on index 2.
        assert!(r.eigenvector[2].abs() > 0.999);
    }

    #[test]
    fn symmetric_2x2_known_spectrum() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a =
            Csr::from_raw(2, 2, vec![0, 2, 4], vec![0, 1, 0, 1], vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let r = power_method(&a, 1e-13, 10_000);
        assert!((r.eigenvalue - 3.0).abs() < 1e-8, "{}", r.eigenvalue);
    }

    #[test]
    fn laplacian_spectral_radius_bound() {
        // 5-point Laplacian eigenvalues lie in (0, 8).
        let a = spmv_sparse::gen::stencil_2d(20, 20).unwrap();
        let r = power_method(&a, 1e-10, 20_000);
        assert!(r.converged);
        assert!(r.eigenvalue > 6.0 && r.eigenvalue < 8.0, "{}", r.eigenvalue);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let a = spmv_sparse::gen::stencil_2d(15, 15).unwrap();
        let r = power_method(&a, 0.0, 3);
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn zero_matrix_reports_zero() {
        let a = Csr::from_raw(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let r = power_method(&a, 1e-10, 10);
        assert_eq!(r.eigenvalue, 0.0);
        assert!(r.converged);
    }
}
