//! Operator abstraction and solver statistics.

use spmv_kernels::variant::SpmvKernel;
use spmv_sparse::Csr;

/// A linear operator `y = A x` — the only thing a Krylov solver needs.
pub trait LinOp {
    /// Output dimension.
    fn nrows(&self) -> usize;
    /// Input dimension.
    fn ncols(&self) -> usize;
    /// Computes `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinOp for Csr {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }

    fn ncols(&self) -> usize {
        Csr::ncols(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }
}

/// Every runnable SpMV kernel is an operator, so solvers can run on
/// tuned kernels directly. Kernels dispatch onto the persistent
/// worker pool of `spmv_kernels::engine`, so the per-iteration SpMV
/// inside a Krylov loop pays no thread-spawn or partitioning cost —
/// the team stays warm across all iterations of a solve.
impl<K: SpmvKernel + ?Sized> LinOp for &K {
    fn nrows(&self) -> usize {
        SpmvKernel::nrows(*self)
    }

    fn ncols(&self) -> usize {
        SpmvKernel::ncols(*self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.run(x, y);
    }
}

/// Convergence record of one solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
    /// Relative residual after every iteration.
    pub history: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_kernels::baseline::CsrKernel;
    use spmv_sparse::gen;

    #[test]
    fn csr_is_a_linop() {
        let a = gen::banded(50, 2, 1.0, 1).unwrap();
        let x = vec![1.0; 50];
        let mut y1 = vec![0.0; 50];
        let mut y2 = vec![0.0; 50];
        LinOp::apply(&a, &x, &mut y1);
        a.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(LinOp::nrows(&a), 50);
    }

    /// Hammers one persistent pool with solver-style repeated applies
    /// and demands bitwise-identical results vs the serial reference:
    /// the nnz-balanced static partition accumulates each row in the
    /// same order as `Csr::spmv`, so equality must be exact, on every
    /// one of the iterations.
    #[test]
    fn repeated_solver_iterations_bitwise_match_serial() {
        let a = gen::circuit(900, 3, 0.4, 5, 11).unwrap();
        let k = CsrKernel::baseline(&a, 4);
        let kref: &CsrKernel<'_> = &k;
        let mut x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 17) as f64 * 0.25).collect();
        let mut y = vec![0.0; a.nrows()];
        let mut y_ref = vec![0.0; a.nrows()];
        for iter in 0..300 {
            kref.apply(&x, &mut y);
            a.spmv(&x, &mut y_ref);
            assert_eq!(y, y_ref, "iteration {iter} diverged from serial");
            // Feed the output back like a power/Krylov iteration,
            // normalized to keep values finite.
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = yi / norm;
            }
        }
    }

    #[test]
    fn kernels_are_linops() {
        let a = gen::banded(50, 2, 1.0, 1).unwrap();
        let k = CsrKernel::baseline(&a, 2);
        let kref: &CsrKernel<'_> = &k;
        let x = vec![0.5; 50];
        let mut y1 = vec![0.0; 50];
        let mut y2 = vec![0.0; 50];
        kref.apply(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
