//! # spmv-solvers
//!
//! Iterative Krylov solvers built on the workspace's SpMV kernels.
//!
//! The paper motivates its low-overhead design with exactly these
//! consumers (§IV-D): CG / GMRES-type methods call SpMV once (or
//! twice) per iteration, and *preconditioned* runs may converge in
//! dozens of iterations — too few to amortize heavyweight autotuning.
//! This crate provides the solver side of that experiment plus
//! realistic example applications:
//!
//! * [`fn@cg`] — Conjugate Gradient (SPD systems);
//! * [`fn@bicgstab`] — BiCGSTAB (general systems);
//! * [`fn@gmres`] — restarted GMRES(m);
//! * [`eigen::power_method`] — dominant-eigenpair approximation;
//! * [`jacobi::Jacobi`] — diagonal preconditioner;
//! * [`op::LinOp`] — the operator abstraction every solver consumes,
//!   implemented by [`spmv_sparse::Csr`] and by every
//!   [`spmv_kernels::variant::SpmvKernel`].

pub mod bicgstab;
pub mod cg;
pub mod eigen;
pub mod gmres;
pub mod jacobi;
pub mod op;
pub mod vecops;

pub use bicgstab::bicgstab;
pub use cg::cg;
pub use eigen::power_method;
pub use gmres::gmres;
pub use jacobi::Jacobi;
pub use op::{LinOp, SolveStats};
