//! BiCGSTAB for general (non-symmetric) systems.

use crate::jacobi::Jacobi;
use crate::op::{LinOp, SolveStats};
use crate::vecops::{axpy, dot, norm2, sub_into};

/// Solves `A x = b` with BiCGSTAB from initial guess `x` (overwritten
/// with the solution).
///
/// # Panics
/// Panics if the operator is not square or dimensions disagree.
pub fn bicgstab(
    a: &impl LinOp,
    b: &[f64],
    x: &mut [f64],
    precond: Option<&Jacobi>,
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "BiCGSTAB needs a square operator");
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");

    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    let mut ax = vec![0.0; n];
    a.apply(x, &mut ax);
    sub_into(b, &ax, &mut r);
    let r0 = r.clone();

    let mut history = Vec::new();
    let mut residual = norm2(&r) / bnorm;
    if residual <= tol {
        return SolveStats { iterations: 0, residual, converged: true, history };
    }

    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut p = vec![0.0; n];
    let mut v = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];

    let prec = |src: &[f64], dst: &mut [f64]| match precond {
        Some(m) => m.apply(src, dst),
        None => dst.copy_from_slice(src),
    };

    for it in 1..=max_iter {
        let rho_new = dot(&r0, &r);
        if rho_new.abs() < f64::MIN_POSITIVE {
            return SolveStats { iterations: it - 1, residual, converged: false, history };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta * (p - omega * v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        prec(&p, &mut phat);
        a.apply(&phat, &mut v);
        alpha = rho / dot(&r0, &v);
        // s = r - alpha * v
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let snorm = norm2(&s) / bnorm;
        if snorm <= tol {
            axpy(alpha, &phat, x);
            history.push(snorm);
            return SolveStats { iterations: it, residual: snorm, converged: true, history };
        }
        prec(&s, &mut shat);
        a.apply(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt.abs() < f64::MIN_POSITIVE {
            return SolveStats { iterations: it - 1, residual, converged: false, history };
        }
        omega = dot(&t, &s) / tt;
        axpy(alpha, &phat, x);
        axpy(omega, &shat, x);
        // r = s - omega * t
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
        residual = norm2(&r) / bnorm;
        history.push(residual);
        if residual <= tol {
            return SolveStats { iterations: it, residual, converged: true, history };
        }
        if omega.abs() < f64::MIN_POSITIVE {
            return SolveStats { iterations: it, residual, converged: false, history };
        }
    }
    SolveStats { iterations: max_iter, residual, converged: false, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    #[test]
    fn solves_nonsymmetric_circuit_system() {
        let a = gen::circuit(500, 2, 0.2, 4, 3).unwrap();
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.5 - 1.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = bicgstab(&a, &b, &mut x, None, 1e-10, 2_000);
        assert!(stats.converged, "residual {}", stats.residual);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn jacobi_preconditioner_helps_or_is_neutral() {
        let a = gen::random_uniform(600, 6, 7).unwrap();
        let b = vec![1.0; 600];
        let mut x0 = vec![0.0; 600];
        let plain = bicgstab(&a, &b, &mut x0, None, 1e-9, 3_000);
        let m = Jacobi::new(&a);
        let mut x1 = vec![0.0; 600];
        let pre = bicgstab(&a, &b, &mut x1, Some(&m), 1e-9, 3_000);
        assert!(plain.converged && pre.converged);
        assert!(pre.iterations <= plain.iterations + 5);
    }

    #[test]
    fn immediate_convergence_on_exact_guess() {
        let a = gen::banded(100, 2, 1.0, 3).unwrap();
        let x_true = vec![2.0; 100];
        let mut b = vec![0.0; 100];
        a.spmv(&x_true, &mut b);
        let mut x = x_true.clone();
        let stats = bicgstab(&a, &b, &mut x, None, 1e-12, 50);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let a = gen::random_uniform(400, 8, 1).unwrap();
        let b = vec![1.0; 400];
        let mut x = vec![0.0; 400];
        let stats = bicgstab(&a, &b, &mut x, None, 1e-15, 2);
        assert!(!stats.converged);
        assert!(stats.iterations <= 2);
    }
}
