//! Restarted GMRES(m) for general systems.
//!
//! Arnoldi with modified Gram-Schmidt and Givens-rotation updates of
//! the Hessenberg least-squares problem.

use crate::jacobi::Jacobi;
use crate::op::{LinOp, SolveStats};
use crate::vecops::{norm2, sub_into};

/// Solves `A x = b` with restarted GMRES from initial guess `x`
/// (overwritten with the solution).
///
/// * `restart` — Krylov subspace dimension `m` between restarts;
/// * `tol` — relative residual target;
/// * `max_iter` — total inner-iteration budget across restarts.
///
/// # Panics
/// Panics if the operator is not square, dimensions disagree, or
/// `restart == 0`.
pub fn gmres(
    a: &impl LinOp,
    b: &[f64],
    x: &mut [f64],
    precond: Option<&Jacobi>,
    restart: usize,
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "GMRES needs a square operator");
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    assert!(restart > 0, "restart must be positive");

    let m = restart;
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut total_iters = 0usize;

    let prec = |src: &[f64], dst: &mut [f64]| match precond {
        Some(p) => p.apply(src, dst),
        None => dst.copy_from_slice(src),
    };

    let mut r = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    let mut residual;

    'outer: loop {
        // r = M^{-1} (b - A x)
        a.apply(x, &mut tmp);
        let mut raw = vec![0.0; n];
        sub_into(b, &tmp, &mut raw);
        prec(&raw, &mut r);
        let beta = norm2(&r);
        residual = norm2(&raw) / bnorm;
        if residual <= tol || total_iters >= max_iter {
            return SolveStats {
                iterations: total_iters,
                residual,
                converged: residual <= tol,
                history,
            };
        }

        // Arnoldi basis (m+1 vectors) and Hessenberg in compact form.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut first = r.clone();
        for val in &mut first {
            *val /= beta;
        }
        v.push(first);
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        let mut k_used = 0usize;
        for k in 0..m {
            if total_iters >= max_iter {
                break;
            }
            total_iters += 1;
            // w = M^{-1} A v_k
            a.apply(&v[k], &mut tmp);
            let mut w = vec![0.0; n];
            prec(&tmp, &mut w);
            // Modified Gram-Schmidt.
            for i in 0..=k {
                let hik = crate::vecops::dot(&w, &v[i]);
                h[i][k] = hik;
                crate::vecops::axpy(-hik, &v[i], &mut w);
            }
            let wnorm = norm2(&w);
            h[k + 1][k] = wnorm;
            // Apply previous Givens rotations to column k.
            for i in 0..k {
                let t = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
                h[i + 1][k] = -sn[i] * h[i][k] + cs[i] * h[i + 1][k];
                h[i][k] = t;
            }
            // New rotation to eliminate h[k+1][k].
            let denom = (h[k][k] * h[k][k] + wnorm * wnorm).sqrt().max(f64::MIN_POSITIVE);
            cs[k] = h[k][k] / denom;
            sn[k] = wnorm / denom;
            h[k][k] = denom;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            k_used = k + 1;

            residual = g[k + 1].abs() / bnorm;
            history.push(residual);

            if wnorm < f64::MIN_POSITIVE {
                break; // happy breakdown: exact solution in the space
            }
            if residual <= tol {
                break;
            }
            let mut next = w;
            for val in &mut next {
                *val /= wnorm;
            }
            v.push(next);
        }

        // Back-substitution for y, then x += V y.
        if k_used > 0 {
            let mut y = vec![0.0f64; k_used];
            for i in (0..k_used).rev() {
                let mut s = g[i];
                for j in i + 1..k_used {
                    s -= h[i][j] * y[j];
                }
                y[i] = s / h[i][i];
            }
            for (j, yj) in y.iter().enumerate() {
                crate::vecops::axpy(*yj, &v[j], x);
            }
        }

        if residual <= tol {
            // Recompute the true residual before declaring victory.
            a.apply(x, &mut tmp);
            let mut raw = vec![0.0; n];
            sub_into(b, &tmp, &mut raw);
            let true_res = norm2(&raw) / bnorm;
            if true_res <= 10.0 * tol {
                return SolveStats {
                    iterations: total_iters,
                    residual: true_res,
                    converged: true,
                    history,
                };
            }
        }
        if total_iters >= max_iter {
            break 'outer;
        }
    }
    a.apply(x, &mut tmp);
    let mut raw = vec![0.0; n];
    sub_into(b, &tmp, &mut raw);
    residual = norm2(&raw) / bnorm;
    SolveStats { iterations: total_iters, residual, converged: residual <= tol, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    #[test]
    fn solves_nonsymmetric_system() {
        let a = gen::random_uniform(300, 6, 5).unwrap();
        let x_true: Vec<f64> = (0..300).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut b = vec![0.0; 300];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; 300];
        let stats = gmres(&a, &b, &mut x, None, 30, 1e-10, 3_000);
        assert!(stats.converged, "residual {}", stats.residual);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn restart_changes_trajectory_but_still_converges() {
        let a = gen::circuit(400, 2, 0.2, 4, 9).unwrap();
        let b = vec![1.0; 400];
        for m in [5, 20, 60] {
            let mut x = vec![0.0; 400];
            let stats = gmres(&a, &b, &mut x, None, m, 1e-9, 5_000);
            assert!(stats.converged, "m={m}, residual {}", stats.residual);
        }
    }

    #[test]
    fn preconditioning_reduces_iterations_on_scaled_system() {
        // A badly diagonal-scaled system where Jacobi shines.
        let base = gen::banded(500, 2, 1.0, 3).unwrap();
        let (nr, nc, rowptr, colind, mut values) = base.into_raw();
        // Scale row i by 10^(i % 3).
        for i in 0..nr {
            let f = 10.0f64.powi((i % 3) as i32);
            for v in &mut values[rowptr[i]..rowptr[i + 1]] {
                *v *= f;
            }
        }
        let a = spmv_sparse::Csr::from_raw(nr, nc, rowptr, colind, values).unwrap();
        let b = vec![1.0; 500];
        let mut x0 = vec![0.0; 500];
        let plain = gmres(&a, &b, &mut x0, None, 30, 1e-9, 4_000);
        let m = Jacobi::new(&a);
        let mut x1 = vec![0.0; 500];
        let pre = gmres(&a, &b, &mut x1, Some(&m), 30, 1e-9, 4_000);
        assert!(pre.converged);
        assert!(
            !plain.converged || pre.iterations <= plain.iterations,
            "pre {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn exact_guess_returns_immediately() {
        let a = gen::banded(100, 2, 1.0, 3).unwrap();
        let x_true = vec![1.5; 100];
        let mut b = vec![0.0; 100];
        a.spmv(&x_true, &mut b);
        let mut x = x_true.clone();
        let stats = gmres(&a, &b, &mut x, None, 10, 1e-12, 100);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "restart")]
    fn zero_restart_panics() {
        let a = gen::banded(10, 1, 1.0, 1).unwrap();
        let b = vec![1.0; 10];
        let mut x = vec![0.0; 10];
        gmres(&a, &b, &mut x, None, 0, 1e-8, 10);
    }
}
