//! Dense vector helpers shared by the solvers.

/// Dot product.
///
/// # Panics
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for k in 0..chunks {
        let i = 4 * k;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in 4 * chunks..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (used by CG's direction update).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// `y = a - b`.
pub fn sub_into(a: &[f64], b: &[f64], y: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    for ((yi, ai), bi) in y.iter_mut().zip(a).zip(b) {
        *yi = ai - bi;
    }
}

/// Scales a vector in place.
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_all_remainders() {
        for n in 0..12 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_and_xpby() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0]);
    }

    #[test]
    fn sub_and_scale() {
        let a = [5.0, 7.0];
        let b = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        sub_into(&a, &b, &mut y);
        assert_eq!(y, [4.0, 5.0]);
        scale(&mut y, -1.0);
        assert_eq!(y, [-4.0, -5.0]);
    }
}
