//! MatrixMarket coordinate-format I/O.
//!
//! Supports the subset of the format used by the University of
//! Florida Sparse Matrix Collection (the paper's matrix source):
//! `matrix coordinate {real|integer|pattern} {general|symmetric}`.
//! Symmetric files are expanded to their full (general) pattern on
//! read, matching how SpMV benchmarks consume them.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Value field type declared in the MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Floating point entries.
    Real,
    /// Integer entries (read as `f64`).
    Integer,
    /// Pattern-only entries (values read as `1.0`).
    Pattern,
}

/// Symmetry declared in the MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; expanded on read.
    Symmetric,
}

/// Parsed MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmHeader {
    /// Value field type.
    pub field: MmField,
    /// Symmetry kind.
    pub symmetry: MmSymmetry,
}

fn parse_header(line: &str) -> Result<MmHeader> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(SparseError::Parse {
            line: 1,
            detail: format!("not a MatrixMarket header: {line:?}"),
        });
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(SparseError::Parse {
            line: 1,
            detail: format!(
                "only 'matrix coordinate' is supported, got {:?} {:?}",
                toks[1], toks[2]
            ),
        });
    }
    let field = match toks[3].to_ascii_lowercase().as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: 1,
                detail: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = match toks[4].to_ascii_lowercase().as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: 1,
                detail: format!("unsupported symmetry {other:?}"),
            })
        }
    };
    Ok(MmHeader { field, symmetry })
}

/// Reads a MatrixMarket coordinate stream into COO form (symmetric
/// inputs are expanded to general).
///
/// # Errors
/// [`SparseError::Parse`] with the offending 1-based line number, or
/// [`SparseError::Io`] for stream failures.
pub fn read_coo<R: Read>(reader: R) -> Result<Coo> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header_line = match lines.next() {
        Some(l) => l?,
        None => {
            return Err(SparseError::Parse { line: 1, detail: "empty stream".into() });
        }
    };
    let header = parse_header(&header_line)?;

    let mut lineno = 1usize;
    // Skip comments, find the size line.
    let size_line = loop {
        lineno += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => {
                return Err(SparseError::Parse { line: lineno, detail: "missing size line".into() })
            }
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("size line needs 3 fields, got {}", dims.len()),
        });
    }
    let parse_usize = |s: &str, what: &str, lineno: usize| -> Result<usize> {
        s.parse().map_err(|_| SparseError::Parse {
            line: lineno,
            detail: format!("invalid {what}: {s:?}"),
        })
    };
    let nrows = parse_usize(dims[0], "row count", lineno)?;
    let ncols = parse_usize(dims[1], "column count", lineno)?;
    let nnz = parse_usize(dims[2], "nnz count", lineno)?;

    // Reserve from the header's declared count, but cap the up-front
    // allocation: a corrupt or hostile header can declare an absurd
    // nnz, and aborting on allocation failure is worse than growing
    // incrementally for the (rare) genuinely huge file.
    const MAX_RESERVE: usize = 1 << 24;
    let mut coo = Coo::with_capacity(nrows, ncols, nnz.min(MAX_RESERVE))?;
    let mut seen = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = match it.next() {
            Some(s) => parse_usize(s, "row index", lineno)?,
            None => continue,
        };
        let c: usize = parse_usize(
            it.next().ok_or(SparseError::Parse {
                line: lineno,
                detail: "missing column index".into(),
            })?,
            "column index",
            lineno,
        )?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: lineno,
                detail: "MatrixMarket indices are 1-based".into(),
            });
        }
        let v = match header.field {
            MmField::Pattern => 1.0,
            _ => {
                let s = it.next().ok_or(SparseError::Parse {
                    line: lineno,
                    detail: "missing value field".into(),
                })?;
                s.parse::<f64>().map_err(|_| SparseError::Parse {
                    line: lineno,
                    detail: format!("invalid value: {s:?}"),
                })?
            }
        };
        coo.push(r - 1, c - 1, v)?;
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("header declared {nnz} entries, found {seen}"),
        });
    }
    if header.symmetry == MmSymmetry::Symmetric {
        coo.symmetrize();
    }
    Ok(coo)
}

/// Reads a MatrixMarket stream directly into CSR.
///
/// # Errors
/// See [`read_coo`].
pub fn read_csr<R: Read>(reader: R) -> Result<Csr> {
    Ok(Csr::from_coo(&read_coo(reader)?))
}

/// Reads a MatrixMarket file from disk into CSR.
///
/// # Errors
/// See [`read_coo`]; file-open failures surface as
/// [`SparseError::Io`].
pub fn read_csr_file<P: AsRef<Path>>(path: P) -> Result<Csr> {
    read_csr(std::fs::File::open(path)?)
}

/// Writes a matrix in `matrix coordinate real general` form.
///
/// # Errors
/// [`SparseError::Io`] on write failure.
pub fn write_csr<W: Write>(writer: W, a: &Csr) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by spmv-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, cols, vals) in a.rows() {
        for (k, &c) in cols.iter().enumerate() {
            writeln!(w, "{} {} {:e}", i + 1, c + 1, vals[k])?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a matrix to a MatrixMarket file on disk.
///
/// # Errors
/// [`SparseError::Io`] on create/write failure.
pub fn write_csr_file<P: AsRef<Path>>(path: P, a: &Csr) -> Result<()> {
    write_csr(std::fs::File::create(path)?, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.0\n\
        1 3 -1.5\n\
        2 2 4\n\
        3 1 1e2\n";

    #[test]
    fn reads_general_real() {
        let a = read_csr(GENERAL.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 2), -1.5);
        assert_eq!(a.get(2, 0), 100.0);
    }

    #[test]
    fn reads_symmetric_and_expands() {
        let s = "%%MatrixMarket matrix coordinate real symmetric\n\
                 2 2 2\n\
                 1 1 3.0\n\
                 2 1 5.0\n";
        let a = read_csr(s.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(1, 0), 5.0);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn reads_pattern() {
        let s = "%%MatrixMarket matrix coordinate pattern general\n\
                 2 3 2\n\
                 1 2\n\
                 2 3\n";
        let a = read_csr(s.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
    }

    #[test]
    fn reads_integer() {
        let s = "%%MatrixMarket matrix coordinate integer general\n\
                 1 1 1\n\
                 1 1 7\n";
        let a = read_csr(s.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 7.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_csr("%%NotMM\n1 1 0\n".as_bytes()).is_err());
        assert!(read_csr("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        assert!(read_csr("%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes())
            .is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let s = "%%MatrixMarket matrix coordinate real general\n1 1 1\n0 1 5.0\n";
        match read_csr(s.as_bytes()) {
            Err(SparseError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let s = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_csr(s.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let a = read_csr(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csr(&mut buf, &a).unwrap();
        let b = read_csr(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stream_is_error() {
        assert!(read_csr("".as_bytes()).is_err());
    }

    #[test]
    fn truncated_file_is_error_not_panic() {
        // Header promises 4 entries, stream ends after 2.
        let s = "%%MatrixMarket matrix coordinate real general\n\
                 3 3 4\n\
                 1 1 2.0\n\
                 2 2 4.0\n";
        match read_csr(s.as_bytes()) {
            Err(SparseError::Parse { detail, .. }) => {
                assert!(detail.contains("declared 4"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Truncated mid-entry: a row index with no column.
        let s2 = "%%MatrixMarket matrix coordinate real general\n\
                  2 2 2\n\
                  1 1 1.0\n\
                  2\n";
        assert!(read_csr(s2.as_bytes()).is_err());
        // Truncated before the size line.
        let s3 = "%%MatrixMarket matrix coordinate real general\n% only comments\n";
        assert!(read_csr(s3.as_bytes()).is_err());
    }

    #[test]
    fn oversized_declared_nnz_is_error_not_abort() {
        // A hostile header declaring ~10^18 entries must not reserve
        // that much memory up front; the entry-count check errors out.
        let s = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n",
            10u64.pow(18)
        );
        match read_csr(s.as_bytes()) {
            Err(SparseError::Parse { detail, .. }) => {
                assert!(detail.contains("found 1"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn more_entries_than_declared_is_error() {
        let s = "%%MatrixMarket matrix coordinate real general\n\
                 2 2 1\n\
                 1 1 1.0\n\
                 2 2 2.0\n";
        assert!(read_csr(s.as_bytes()).is_err());
    }
}
