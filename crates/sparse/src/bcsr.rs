//! Block CSR (BCSR) — register-blocked sparse storage.
//!
//! Not part of the paper's original optimization pool, but the pool
//! is explicitly designed for plug-and-play extension ("optimizations
//! can be henceforth added or replaced"): BCSR is the classic
//! `MB`-class alternative from OSKI/SPARSITY (register blocking
//! amortises one column index over an `R×C` dense block, trading
//! padding zeros for index compression and unrolled inner loops).
//!
//! The implementation uses a fixed compile-time-friendly block shape
//! stored row-major per block, with block-aligned rows (the final
//! partial block row is padded).

use crate::csr::Csr;
use crate::error::SparseError;
use crate::index_u32;
use crate::Result;

/// A sparse matrix in BCSR format with `r x c` dense blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsr {
    nrows: usize,
    ncols: usize,
    r: usize,
    c: usize,
    /// Block-row pointer (`nblock_rows + 1` entries).
    browptr: Vec<usize>,
    /// Block column indices (in units of block columns).
    bcolind: Vec<u32>,
    /// Dense block storage, `r*c` values per block, row-major.
    values: Vec<f64>,
}

impl Bcsr {
    /// Converts from CSR with the given block shape. Entries are
    /// grouped into aligned `r x c` tiles; absent positions inside a
    /// selected tile are stored as explicit zeros (the padding cost
    /// that makes BCSR profitable only for clustered matrices).
    ///
    /// # Errors
    /// [`SparseError::InvalidGenerator`] if `r` or `c` is zero.
    pub fn from_csr(a: &Csr, r: usize, c: usize) -> Result<Bcsr> {
        if r == 0 || c == 0 {
            return Err(SparseError::InvalidGenerator("block dims must be positive".into()));
        }
        let nbrows = a.nrows().div_ceil(r);
        let mut browptr = Vec::with_capacity(nbrows + 1);
        browptr.push(0usize);
        let mut bcolind: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();

        // Scratch: block column -> slot index for the current block row.
        let mut slot: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for br in 0..nbrows {
            slot.clear();
            let row_lo = br * r;
            let row_hi = ((br + 1) * r).min(a.nrows());
            // Discover the block columns of this block row (sorted).
            let mut bcols: Vec<u32> = Vec::new();
            for i in row_lo..row_hi {
                for &col in a.row(i).0 {
                    bcols.push(col / index_u32(c));
                }
            }
            bcols.sort_unstable();
            bcols.dedup();
            let base_block = bcolind.len();
            for (k, &bc) in bcols.iter().enumerate() {
                slot.insert(bc, base_block + k);
                bcolind.push(bc);
            }
            values.resize(bcolind.len() * r * c, 0.0);
            // Scatter the entries into their blocks.
            for i in row_lo..row_hi {
                let (cols, vals) = a.row(i);
                let local_r = i - row_lo;
                for (k, &col) in cols.iter().enumerate() {
                    let bc = col / index_u32(c);
                    let block = slot[&bc];
                    let local_c = (col as usize) % c;
                    values[block * r * c + local_r * c + local_c] = vals[k];
                }
            }
            browptr.push(bcolind.len());
        }
        Ok(Bcsr { nrows: a.nrows(), ncols: a.ncols(), r, c, browptr, bcolind, values })
    }

    /// Number of rows (unpadded).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (unpadded).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Block shape `(r, c)`.
    #[inline]
    pub fn block_shape(&self) -> (usize, usize) {
        (self.r, self.c)
    }

    /// Number of stored blocks.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.bcolind.len()
    }

    /// Number of block rows.
    #[inline]
    pub fn nblock_rows(&self) -> usize {
        self.browptr.len() - 1
    }

    /// Stored values including padding zeros.
    #[inline]
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Fill ratio: stored slots per original nonzero (`>= 1`; the
    /// OSKI profitability metric).
    pub fn fill_ratio(&self, original_nnz: usize) -> f64 {
        if original_nnz == 0 {
            return 1.0;
        }
        self.values.len() as f64 / original_nnz as f64
    }

    /// Memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        (self.browptr.len()) * 8 + self.bcolind.len() * 4 + self.values.len() * 8
    }

    /// Serial SpMV: `y = A * x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        self.spmv_block_rows_into(0..self.nblock_rows(), x, y);
    }

    /// SpMV over a contiguous range of **block rows**, writing into
    /// the output slice starting at scalar row `range.start * r`.
    /// `out` must cover exactly those scalar rows (the final block row
    /// may be shorter than `r`).
    pub fn spmv_block_rows_into(&self, range: std::ops::Range<usize>, x: &[f64], out: &mut [f64]) {
        let (r, c) = (self.r, self.c);
        let row0 = range.start * r;
        let mut acc = vec![0.0f64; r];
        for br in range {
            acc.fill(0.0);
            for b in self.browptr[br]..self.browptr[br + 1] {
                let col0 = self.bcolind[b] as usize * c;
                let block = &self.values[b * r * c..(b + 1) * r * c];
                let width = c.min(self.ncols.saturating_sub(col0));
                for (lr, a) in acc.iter_mut().enumerate() {
                    let brow = &block[lr * c..lr * c + width];
                    let xs = &x[col0..col0 + width];
                    let mut s = 0.0;
                    for (bv, xv) in brow.iter().zip(xs) {
                        s += bv * xv;
                    }
                    *a += s;
                }
            }
            let rows_here = r.min(self.nrows - br * r);
            let off = br * r - row0;
            out[off..off + rows_here].copy_from_slice(&acc[..rows_here]);
        }
    }

    /// Like [`Bcsr::spmv_block_rows_into`] with per-element bounds
    /// checks elided — the register-blocked fast path.
    ///
    /// # Safety
    /// * `self` must hold a structure that passed
    ///   [`crate::validate::ValidateFormat::validate_structure`]
    ///   (i.e. the caller holds a [`crate::Validated`] witness): block
    ///   geometry is consistent and every block column starts inside
    ///   `ncols`.
    /// * `range.end <= self.nblock_rows()`.
    /// * `x.len() == self.ncols()`.
    /// * `out` covers scalar rows `range.start * r ..
    ///   min(range.end * r, nrows)`.
    pub unsafe fn spmv_block_rows_into_unchecked(
        &self,
        range: std::ops::Range<usize>,
        x: &[f64],
        out: &mut [f64],
    ) {
        let (r, c) = (self.r, self.c);
        let row0 = range.start * r;
        let mut acc = vec![0.0f64; r];
        for br in range {
            acc.fill(0.0);
            // SAFETY: the validated browptr has nblock_rows + 1 entries
            // and the caller guarantees range.end <= nblock_rows.
            let bs = unsafe { *self.browptr.get_unchecked(br) };
            // SAFETY: same bound — br + 1 <= nblock_rows.
            let be = unsafe { *self.browptr.get_unchecked(br + 1) };
            for b in bs..be {
                // SAFETY: the validated browptr is monotone with tail ==
                // nblocks, so b < bcolind.len().
                let col0 = unsafe { *self.bcolind.get_unchecked(b) } as usize * c;
                let width = c.min(self.ncols - col0);
                // SAFETY: validation proved values.len() == nblocks * r * c,
                // so block b's r*c slice is in bounds.
                let block = unsafe { self.values.get_unchecked(b * r * c..(b + 1) * r * c) };
                for (lr, a) in acc.iter_mut().enumerate() {
                    // SAFETY: lr < r and width <= c keep the row slice
                    // inside the block; validation proved col0 < ncols so
                    // col0 + width <= ncols == x.len() (caller contract).
                    let (brow, xs) = unsafe {
                        (
                            block.get_unchecked(lr * c..lr * c + width),
                            x.get_unchecked(col0..col0 + width),
                        )
                    };
                    let mut s = 0.0;
                    for (bv, xv) in brow.iter().zip(xs) {
                        s += bv * xv;
                    }
                    *a += s;
                }
            }
            let rows_here = r.min(self.nrows - br * r);
            let off = br * r - row0;
            // SAFETY: the caller guarantees out covers scalar rows
            // row0..min(range.end * r, nrows), so off + rows_here fits.
            unsafe {
                out.get_unchecked_mut(off..off + rows_here)
                    .copy_from_slice(acc.get_unchecked(..rows_here));
            }
        }
    }

    /// Block-row pointer array.
    #[inline]
    pub fn browptr(&self) -> &[usize] {
        &self.browptr
    }

    /// Picks a profitable block shape for `a` (from the classic 1x1 /
    /// 2x2 / 4x4 / 2x4 candidates) by estimated footprint, or `None`
    /// when every blocked shape inflates the footprint past plain CSR.
    pub fn auto_shape(a: &Csr) -> Option<(usize, usize)> {
        let csr_bytes = a.footprint_bytes() as f64;
        let mut best: Option<((usize, usize), f64)> = None;
        for &(r, c) in &[(2usize, 2usize), (4, 4), (2, 4), (4, 2)] {
            let Ok(b) = Bcsr::from_csr(a, r, c) else { continue };
            let bytes = b.footprint_bytes() as f64;
            if bytes < csr_bytes && best.map(|(_, bb)| bytes < bb).unwrap_or(true) {
                best = Some(((r, c), bytes));
            }
        }
        best.map(|(shape, _)| shape)
    }
}

impl crate::validate::ValidateFormat for Bcsr {
    fn format_name(&self) -> &'static str {
        "bcsr"
    }

    fn validate_structure(&self) -> Result<()> {
        let corrupt = |detail: String| SparseError::Corrupt { format: "bcsr", detail };
        if self.r == 0 || self.c == 0 {
            return Err(corrupt(format!("block shape {}x{} has a zero dimension", self.r, self.c)));
        }
        let nbrows = self.nrows.div_ceil(self.r);
        crate::validate::check_rowptr("bcsr", &self.browptr, nbrows, self.bcolind.len())?;
        let slots = self.bcolind.len() * self.r * self.c;
        if self.values.len() != slots {
            return Err(corrupt(format!(
                "values length {} != nblocks * r * c = {slots}",
                self.values.len()
            )));
        }
        for (b, &bc) in self.bcolind.iter().enumerate() {
            if bc as usize * self.c >= self.ncols {
                return Err(corrupt(format!(
                    "block {b} starts at column {} >= ncols = {}",
                    bc as usize * self.c,
                    self.ncols
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_product(a: &Csr, r: usize, c: usize) {
        let bb = Bcsr::from_csr(a, r, c).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y1);
        bb.spmv(&x, &mut y2);
        for (i, (u, v)) in y1.iter().zip(&y2).enumerate() {
            assert!((u - v).abs() < 1e-10, "({r}x{c}) row {i}: {u} vs {v}");
        }
    }

    #[test]
    fn matches_csr_for_many_shapes() {
        let a = gen::banded(200, 5, 0.8, 3).unwrap();
        for (r, c) in [(1, 1), (2, 2), (3, 3), (4, 4), (2, 4), (5, 3)] {
            check_product(&a, r, c);
        }
    }

    #[test]
    fn non_divisible_dimensions_padded() {
        let a = gen::banded(101, 3, 1.0, 7).unwrap(); // 101 % 2 != 0
        check_product(&a, 2, 2);
        check_product(&a, 4, 4);
        let b = Bcsr::from_csr(&a, 2, 2).unwrap();
        assert_eq!(b.nblock_rows(), 51);
    }

    #[test]
    fn rejects_zero_blocks() {
        let a = Csr::identity(4);
        assert!(Bcsr::from_csr(&a, 0, 2).is_err());
        assert!(Bcsr::from_csr(&a, 2, 0).is_err());
    }

    #[test]
    fn one_by_one_blocks_store_exactly_nnz() {
        let a = gen::powerlaw(300, 5, 2.0, 1).unwrap();
        let b = Bcsr::from_csr(&a, 1, 1).unwrap();
        assert_eq!(b.stored_values(), a.nnz());
        assert!((b.fill_ratio(a.nnz()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_blocks_compress_clustered_matrices() {
        let a = gen::block_dense(256, 16, 0, 9).unwrap();
        let b = Bcsr::from_csr(&a, 4, 4).unwrap();
        // Clustered matrix: small fill overhead, smaller footprint.
        assert!(b.fill_ratio(a.nnz()) < 1.2, "fill {}", b.fill_ratio(a.nnz()));
        assert!(b.footprint_bytes() < a.footprint_bytes());
    }

    #[test]
    fn scattered_matrices_inflate() {
        let a = gen::random_uniform(400, 6, 3).unwrap();
        let b = Bcsr::from_csr(&a, 4, 4).unwrap();
        assert!(b.fill_ratio(a.nnz()) > 2.0, "fill {}", b.fill_ratio(a.nnz()));
    }

    #[test]
    fn auto_shape_decisions() {
        let clustered = gen::block_dense(256, 16, 0, 9).unwrap();
        assert!(Bcsr::auto_shape(&clustered).is_some());
        let scattered = gen::random_uniform(400, 6, 3).unwrap();
        assert_eq!(Bcsr::auto_shape(&scattered), None);
    }

    #[test]
    fn partial_block_row_range() {
        let a = gen::banded(64, 4, 1.0, 5).unwrap();
        let b = Bcsr::from_csr(&a, 2, 2).unwrap();
        let x = vec![1.0; 64];
        let mut full = vec![0.0; 64];
        a.spmv(&x, &mut full);
        let mut part = vec![0.0; 16]; // block rows 8..16 = scalar rows 16..32
        b.spmv_block_rows_into(8..16, &x, &mut part);
        for (u, v) in part.iter().zip(&full[16..32]) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }
}

#[cfg(test)]
mod corruption_proptests {
    use super::*;
    use crate::validate::{ValidateFormat, Validated};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every corruption of a well-formed BCSR buffer is rejected
        /// by the witness constructor with an error — never a panic.
        #[test]
        fn corrupted_bcsr_is_rejected(n in 4usize..40, seed in 0u64..1000, kind in 0usize..3) {
            let a = crate::gen::banded(n, 2, 1.0, seed).expect("generator");
            let mut b = Bcsr::from_csr(&a, 2, 2).expect("blockable");
            match kind {
                0 => *b.browptr.last_mut().unwrap() += 1,
                1 => b.bcolind[0] = b.ncols.div_ceil(b.c) as u32,
                _ => { b.values.pop(); }
            }
            let err = b.validate_structure().expect_err("corruption must be caught");
            prop_assert!(err.to_string().contains("bcsr"), "got: {err}");
            prop_assert!(Validated::new(&b).is_err());
        }
    }
}
