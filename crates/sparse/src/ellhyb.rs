//! ELLPACK + COO hybrid format.
//!
//! The Inspector-Executor reference baseline (`spmv-ref`) converts a
//! matrix to this format when its row lengths are regular enough: the
//! first `ell_width` nonzeros of every row are stored in a dense
//! column-padded layout (good for vector units and regular traversal),
//! and the overflow tail goes to a COO list.

use crate::coo::Coo;
use crate::csr::Csr;

/// ELL + COO hybrid sparse matrix.
///
/// ELL slab layout is row-major: entry `(i, k)` of the slab lives at
/// `i * ell_width + k`. Padding slots carry column `u32::MAX` and
/// value `0.0`; kernels must skip the sentinel column.
#[derive(Debug, Clone, PartialEq)]
pub struct EllHybrid {
    nrows: usize,
    ncols: usize,
    ell_width: usize,
    ell_colind: Vec<u32>,
    ell_values: Vec<f64>,
    tail: Coo,
}

/// Column sentinel marking an ELL padding slot.
pub const ELL_PAD: u32 = u32::MAX;

impl EllHybrid {
    /// Converts `a`, keeping up to `ell_width` nonzeros per row in the
    /// ELL slab and spilling the rest into the COO tail.
    pub fn from_csr(a: &Csr, ell_width: usize) -> EllHybrid {
        let nrows = a.nrows();
        let mut ell_colind = vec![ELL_PAD; nrows * ell_width];
        let mut ell_values = vec![0.0f64; nrows * ell_width];
        let mut tail = Coo::new(nrows, a.ncols()).expect("shape already validated by Csr");
        for (i, cols, vals) in a.rows() {
            let keep = cols.len().min(ell_width);
            let base = i * ell_width;
            ell_colind[base..base + keep].copy_from_slice(&cols[..keep]);
            ell_values[base..base + keep].copy_from_slice(&vals[..keep]);
            for k in keep..cols.len() {
                tail.push(i, cols[k] as usize, vals[k]).expect("indices valid by construction");
            }
        }
        EllHybrid { nrows, ncols: a.ncols(), ell_width, ell_colind, ell_values, tail }
    }

    /// Picks an ELL width the way a typical hybrid autotuner does:
    /// wide enough to cover ~95% of rows fully, capped at a small
    /// multiple of the mean row length so padding stays bounded.
    pub fn auto_width(a: &Csr) -> usize {
        let n = a.nrows();
        if n == 0 || a.nnz() == 0 {
            return 0;
        }
        let mut lens: Vec<usize> = (0..n).map(|i| a.row_nnz(i)).collect();
        lens.sort_unstable();
        let p95 = lens[(n as f64 * 0.95) as usize % n];
        let mean = (a.nnz() as f64 / n as f64).ceil() as usize;
        p95.min(mean.saturating_mul(2)).max(1)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// ELL slab width (entries per row).
    #[inline]
    pub fn ell_width(&self) -> usize {
        self.ell_width
    }

    /// Stored (non-padding) nonzeros.
    pub fn nnz(&self) -> usize {
        self.ell_colind.iter().filter(|&&c| c != ELL_PAD).count() + self.tail.nnz()
    }

    /// Nonzeros that spilled to the COO tail.
    #[inline]
    pub fn tail_nnz(&self) -> usize {
        self.tail.nnz()
    }

    /// Fraction of ELL slab slots that are padding (wasted memory).
    pub fn padding_ratio(&self) -> f64 {
        if self.ell_colind.is_empty() {
            return 0.0;
        }
        let pad = self.ell_colind.iter().filter(|&&c| c == ELL_PAD).count();
        pad as f64 / self.ell_colind.len() as f64
    }

    /// Memory footprint in bytes (slab incl. padding + tail).
    pub fn footprint_bytes(&self) -> usize {
        self.ell_colind.len() * 4 + self.ell_values.len() * 8 + self.tail.nnz() * (4 + 4 + 8)
    }

    /// Serial SpMV: `y = A * x`.
    ///
    /// # Panics
    /// Panics on vector length mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        self.spmv_ell_rows(0..self.nrows, x, y);
        for (r, c, v) in self.tail.iter() {
            y[r] += v * x[c];
        }
    }

    /// ELL-slab-only SpMV over a contiguous row range (overwrites
    /// `y[rows]`; the tail must be added afterwards).
    pub fn spmv_ell_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        let w = self.ell_width;
        for i in rows {
            let base = i * w;
            let mut sum = 0.0;
            for k in 0..w {
                let c = self.ell_colind[base + k];
                if c == ELL_PAD {
                    break; // rows are packed left-to-right
                }
                sum += self.ell_values[base + k] * x[c as usize];
            }
            y[i] = sum;
        }
    }

    /// ELL-slab-only SpMV over a row range writing into a range-local
    /// slice: `out[k] = slab_row(rows.start + k) · x`. Lets parallel
    /// callers hand each worker a disjoint `&mut` sub-slice of `y`.
    ///
    /// # Panics
    /// Panics if `out.len() != rows.len()`.
    pub fn spmv_ell_rows_into(&self, rows: std::ops::Range<usize>, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), rows.len(), "output slice length");
        let w = self.ell_width;
        let start = rows.start;
        for i in rows {
            let base = i * w;
            let mut sum = 0.0;
            for k in 0..w {
                let c = self.ell_colind[base + k];
                if c == ELL_PAD {
                    break;
                }
                sum += self.ell_values[base + k] * x[c as usize];
            }
            out[i - start] = sum;
        }
    }

    /// COO tail accessor (row-major order of the original matrix).
    #[inline]
    pub fn tail(&self) -> &Coo {
        &self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn irregular() -> Csr {
        // row lengths: 1, 4, 2, 0
        let mut coo = Coo::new(4, 8).unwrap();
        coo.push(0, 3, 1.0).unwrap();
        for c in 0..4 {
            coo.push(1, 2 * c, c as f64 + 1.0).unwrap();
        }
        coo.push(2, 0, 5.0).unwrap();
        coo.push(2, 7, 6.0).unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn conversion_preserves_nnz() {
        let a = irregular();
        for w in 1..6 {
            let h = EllHybrid::from_csr(&a, w);
            assert_eq!(h.nnz(), a.nnz(), "width {w}");
        }
    }

    #[test]
    fn tail_holds_overflow() {
        let a = irregular();
        let h = EllHybrid::from_csr(&a, 2);
        assert_eq!(h.tail_nnz(), 2); // row 1 spills 2 entries
        let h4 = EllHybrid::from_csr(&a, 4);
        assert_eq!(h4.tail_nnz(), 0);
    }

    #[test]
    fn spmv_matches_csr_for_all_widths() {
        let a = irregular();
        let x: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.5).collect();
        let mut y_ref = vec![0.0; 4];
        a.spmv(&x, &mut y_ref);
        for w in 1..6 {
            let h = EllHybrid::from_csr(&a, w);
            let mut y = vec![0.0; 4];
            h.spmv(&x, &mut y);
            for (u, v) in y.iter().zip(&y_ref) {
                assert!((u - v).abs() < 1e-12, "width {w}");
            }
        }
    }

    #[test]
    fn padding_ratio_reflects_irregularity() {
        let a = irregular();
        let h = EllHybrid::from_csr(&a, 4);
        // 16 slots, 7 nonzeros -> 9 padded
        assert!((h.padding_ratio() - 9.0 / 16.0).abs() < 1e-12);
        let id = Csr::identity(8);
        let hid = EllHybrid::from_csr(&id, 1);
        assert_eq!(hid.padding_ratio(), 0.0);
    }

    #[test]
    fn auto_width_regular_matrix() {
        let id = Csr::identity(64);
        assert_eq!(EllHybrid::auto_width(&id), 1);
    }

    #[test]
    fn auto_width_bounded_for_skewed() {
        // one dense row of 128, the rest singletons
        let mut coo = Coo::new(128, 128).unwrap();
        for c in 0..128 {
            coo.push(0, c, 1.0).unwrap();
        }
        for i in 1..128 {
            coo.push(i, i, 1.0).unwrap();
        }
        let a = Csr::from_coo(&coo);
        let w = EllHybrid::auto_width(&a);
        assert!(w <= 4, "width {w} should be bounded by 2x mean");
    }
}
