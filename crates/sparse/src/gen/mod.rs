//! Synthetic sparse matrix generators.
//!
//! The paper evaluates on matrices from the University of Florida
//! Sparse Matrix Collection. That corpus is not redistributable inside
//! this repository, so we generate structural stand-ins: each
//! generator reproduces one *archetype* of sparsity structure that
//! drives a distinct SpMV bottleneck:
//!
//! | archetype | paper exemplars | dominant bottleneck |
//! |---|---|---|
//! | [`fn@banded`] FEM band | `consph`, `boneS10`, `cant` | MB |
//! | [`stencil`] 2-D/3-D grids | `parabolic_fem`, `thermal2` | MB / IMB on many-core |
//! | [`random_uniform`] | — (worst-case irregular) | ML |
//! | [`fn@powerlaw`] graphs | `web-Google`, `flickr`, `webbase-1M` | ML + IMB |
//! | [`fn@circuit`] few dense rows | `rajat30`, `ASIC_680k`, `circuit5M` | IMB + CMP |
//! | [`block_dense`] | `human_gene1`, `nd24k` | MB / CMP |
//!
//! All generators are deterministic given their seed.

pub mod banded;
pub mod blockdense;
pub mod circuit;
pub mod permute;
pub mod powerlaw;
pub mod random;
pub mod rmat;
pub mod stencil;
pub mod suite;

pub use banded::banded;
pub use blockdense::block_dense;
pub use circuit::circuit;
pub use permute::{jittered_permutation, permute_symmetric};
pub use powerlaw::powerlaw;
pub use random::random_uniform;
pub use rmat::{rmat, RmatParams};
pub use stencil::{stencil_2d, stencil_3d};
pub use suite::{corpus, Archetype, SuiteMatrix, SUITE};

use crate::index_u32;
use rand::Rng;

/// Draws `k` distinct column indices from `0..ncols` into `buf`
/// (sorted). Falls back to a dense prefix when `k >= ncols`.
pub(crate) fn sample_distinct<R: Rng>(rng: &mut R, ncols: usize, k: usize, buf: &mut Vec<u32>) {
    buf.clear();
    if k >= ncols {
        buf.extend(0..index_u32(ncols));
        return;
    }
    // Rejection sampling is fine for the sparse case (k << ncols);
    // switch to a partial Fisher-Yates style reservoir when dense.
    if k * 4 >= ncols {
        // Dense-ish: Bernoulli sweep with adjusted probability.
        let p = k as f64 / ncols as f64;
        for c in 0..ncols {
            if rng.gen_bool(p.min(1.0)) {
                buf.push(index_u32(c));
            }
        }
        if buf.is_empty() {
            buf.push(index_u32(rng.gen_range(0..ncols)));
        }
        return;
    }
    while buf.len() < k {
        let c = index_u32(rng.gen_range(0..ncols));
        buf.push(c);
        if buf.len() == k {
            buf.sort_unstable();
            buf.dedup();
        }
    }
    buf.sort_unstable();
    buf.dedup();
    // Top up after dedup (rarely loops more than once when k << ncols).
    while buf.len() < k {
        let c = index_u32(rng.gen_range(0..ncols));
        if buf.binary_search(&c).is_err() {
            let pos = buf.partition_point(|&x| x < c);
            buf.insert(pos, c);
        }
    }
}

/// Random nonzero value in `[-1, 1] \ {0}`; keeping magnitudes O(1)
/// makes solver tests well-conditioned after diagonal boosting.
pub(crate) fn random_value<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v.abs() > 1e-3 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_distinct_properties() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut buf = Vec::new();
        for &(ncols, k) in &[(100usize, 5usize), (100, 60), (10, 10), (10, 20), (1000, 1)] {
            sample_distinct(&mut rng, ncols, k, &mut buf);
            assert!(!buf.is_empty());
            assert!(buf.len() <= k.min(ncols) || k * 4 >= ncols);
            for w in buf.windows(2) {
                assert!(w[0] < w[1], "sorted distinct");
            }
            assert!(buf.iter().all(|&c| (c as usize) < ncols));
        }
    }

    #[test]
    fn sample_distinct_exact_when_sparse() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = Vec::new();
        sample_distinct(&mut rng, 10_000, 17, &mut buf);
        assert_eq!(buf.len(), 17);
    }

    #[test]
    fn random_value_never_tiny() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = random_value(&mut rng);
            assert!(v.abs() > 1e-3 && v.abs() <= 1.0);
        }
    }
}
