//! R-MAT (recursive matrix) graph generator.
//!
//! The standard Kronecker-style generator behind Graph500: edges are
//! placed by recursively descending into one of four quadrants with
//! probabilities `(a, b, c, d)`. With skewed parameters it produces
//! the community structure and degree skew of real web/social graphs
//! — a complementary archetype to [`super::powerlaw()`], which controls
//! the degree distribution directly but has no block structure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters `(0.57, 0.19, 0.19)`.
    pub fn graph500() -> RmatParams {
        RmatParams { a: 0.57, b: 0.19, c: 0.19 }
    }

    /// Implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) -> Result<()> {
        let d = self.d();
        if self.a < 0.0 || self.b < 0.0 || self.c < 0.0 || d < 0.0 {
            return Err(SparseError::InvalidGenerator(format!(
                "rmat probabilities must be non-negative and sum <= 1 \
                 (a={}, b={}, c={}, d={d})",
                self.a, self.b, self.c
            )));
        }
        Ok(())
    }
}

/// Generates a `2^scale x 2^scale` R-MAT adjacency matrix with
/// `edge_factor * 2^scale` edges (duplicates merged, values set to
/// edge multiplicities).
///
/// # Errors
/// [`SparseError::InvalidGenerator`] for `scale == 0`,
/// `edge_factor == 0`, invalid probabilities, or `scale > 28` (index
/// overflow guard).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Result<Csr> {
    if scale == 0 || scale > 28 {
        return Err(SparseError::InvalidGenerator(format!("scale {scale} outside 1..=28")));
    }
    if edge_factor == 0 {
        return Err(SparseError::InvalidGenerator("edge_factor must be >= 1".into()));
    }
    params.validate()?;
    let n = 1usize << scale;
    let nedges = edge_factor * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, nedges)?;
    let ab = params.a + params.b;
    let a_frac = if ab > 0.0 { params.a / ab } else { 0.5 };
    let cd = 1.0 - ab;
    let c_frac = if cd > 0.0 { params.c / cd } else { 0.5 };
    for _ in 0..nedges {
        let mut row = 0usize;
        let mut col = 0usize;
        for level in (0..scale).rev() {
            let bit = 1usize << level;
            // Pick a quadrant, with slight noise to avoid exact
            // self-similarity (standard smoothing).
            let top = rng.gen_bool(ab.clamp(0.0, 1.0));
            let left = if top {
                rng.gen_bool(a_frac.clamp(0.0, 1.0))
            } else {
                rng.gen_bool(c_frac.clamp(0.0, 1.0))
            };
            if !top {
                row |= bit;
            }
            if !left {
                col |= bit;
            }
        }
        coo.push(row, col, 1.0)?;
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn rejects_bad_parameters() {
        assert!(rmat(0, 8, RmatParams::graph500(), 1).is_err());
        assert!(rmat(4, 0, RmatParams::graph500(), 1).is_err());
        assert!(rmat(30, 8, RmatParams::graph500(), 1).is_err());
        assert!(rmat(4, 8, RmatParams { a: 0.9, b: 0.2, c: 0.2 }, 1).is_err());
    }

    #[test]
    fn shape_and_edge_budget() {
        let a = rmat(10, 8, RmatParams::graph500(), 42).unwrap();
        assert_eq!(a.nrows(), 1024);
        // Duplicates merge, so nnz <= edges.
        assert!(a.nnz() <= 8 * 1024);
        assert!(a.nnz() > 4 * 1024, "{} edges left after dedup", a.nnz());
    }

    #[test]
    fn skewed_parameters_produce_degree_skew() {
        let skewed = rmat(12, 8, RmatParams::graph500(), 7).unwrap();
        let uniform = rmat(12, 8, RmatParams { a: 0.25, b: 0.25, c: 0.25 }, 7).unwrap();
        let s_skew = RowStats::compute(&skewed, 8).nnz_summary();
        let s_uni = RowStats::compute(&uniform, 8).nnz_summary();
        assert!(
            s_skew.max > 2.0 * s_uni.max,
            "skewed max {} vs uniform max {}",
            s_skew.max,
            s_uni.max
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(8, 4, RmatParams::graph500(), 3).unwrap();
        let b = rmat(8, 4, RmatParams::graph500(), 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_edges_accumulate_multiplicity() {
        let a = rmat(6, 32, RmatParams::graph500(), 9).unwrap();
        // With heavy duplication some entry must exceed 1.0.
        assert!(a.values().iter().any(|&v| v > 1.5));
    }
}
