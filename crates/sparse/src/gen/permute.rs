//! Symmetric permutations of sparse matrices.
//!
//! Real unstructured-mesh matrices (`parabolic_fem`, `offshore`,
//! `thermal2`) come from mesh generators whose node numbering is only
//! *locally* coherent — unlike the perfectly ordered grids our
//! stencil generators produce. [`jittered_permutation`] scrambles
//! indices within a sliding window, and [`permute_symmetric`] applies
//! `P A Pᵀ`, turning an ideal grid matrix into a realistically
//! irregular one while preserving its spectrum and row-length
//! distribution.

use crate::index_u32;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Builds a permutation of `0..n` where each index moves at most
/// ~`window` positions: a Fisher-Yates shuffle restricted to a
/// sliding window. `window = 0` yields the identity; `window >= n`
/// yields a full shuffle.
pub fn jittered_permutation(n: usize, window: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..index_u32(n)).collect();
    if window == 0 || n < 2 {
        return perm;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n - 1 {
        let hi = (i + window).min(n - 1);
        let j = rng.gen_range(i..=hi);
        perm.swap(i, j);
    }
    perm
}

/// Applies the symmetric permutation `B = P A Pᵀ`, i.e.
/// `B[perm[i]][perm[j]] = A[i][j]`.
///
/// # Errors
/// [`SparseError::DimensionMismatch`] if `perm.len() != nrows` (the
/// matrix must be square for a symmetric permutation).
pub fn permute_symmetric(a: &Csr, perm: &[u32]) -> Result<Csr> {
    if a.nrows() != a.ncols() || perm.len() != a.nrows() {
        return Err(SparseError::DimensionMismatch {
            detail: format!(
                "permutation length {} vs square matrix {}x{}",
                perm.len(),
                a.nrows(),
                a.ncols()
            ),
        });
    }
    debug_assert!(is_permutation(perm));
    let mut coo = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz())?;
    for (i, cols, vals) in a.rows() {
        let pi = perm[i] as usize;
        for (k, &c) in cols.iter().enumerate() {
            coo.push(pi, perm[c as usize] as usize, vals[k])?;
        }
    }
    Ok(Csr::from_coo(&coo))
}

/// Checks that `perm` is a bijection of `0..perm.len()`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::stencil_2d;
    use crate::stats::RowStats;

    #[test]
    fn jittered_permutation_is_a_permutation() {
        for (n, w) in [(100usize, 0usize), (100, 5), (100, 50), (100, 1000), (1, 3)] {
            let p = jittered_permutation(n, w, 7);
            assert!(is_permutation(&p), "n={n} w={w}");
        }
    }

    #[test]
    fn zero_window_is_identity() {
        let p = jittered_permutation(50, 0, 3);
        assert!(p.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn displacement_is_locally_bounded_on_average() {
        // Individual elements can drift further than the window by
        // chained forward swaps, but the *typical* displacement stays
        // on the order of the window — that is the locality property
        // the generator relies on.
        let w = 10;
        let p = jittered_permutation(1_000, w, 9);
        let mean_disp: f64 =
            p.iter().enumerate().map(|(i, &v)| (v as f64 - i as f64).abs()).sum::<f64>()
                / p.len() as f64;
        assert!(mean_disp <= 2.0 * w as f64, "mean displacement {mean_disp}");
        assert!(mean_disp >= 1.0, "permutation did nothing");
    }

    #[test]
    fn permutation_preserves_structure_statistics() {
        let a = stencil_2d(30, 30).unwrap();
        let p = jittered_permutation(a.nrows(), 40, 5);
        let b = permute_symmetric(&a, &p).unwrap();
        assert_eq!(b.nnz(), a.nnz());
        assert!(b.is_symmetric(1e-12));
        // Row-length multiset is invariant under symmetric permutation.
        let mut la: Vec<u32> = RowStats::compute(&a, 8).nnz;
        let mut lb: Vec<u32> = RowStats::compute(&b, 8).nnz;
        la.sort_unstable();
        lb.sort_unstable();
        assert_eq!(la, lb);
    }

    #[test]
    fn permutation_preserves_the_product_up_to_reordering() {
        let a = stencil_2d(12, 12).unwrap();
        let n = a.nrows();
        let p = jittered_permutation(n, 20, 11);
        let b = permute_symmetric(&a, &p).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        // y_a = A x; y_b = B (P x) must equal P (A x).
        let mut px = vec![0.0; n];
        for i in 0..n {
            px[p[i] as usize] = x[i];
        }
        let mut ya = vec![0.0; n];
        a.spmv(&x, &mut ya);
        let mut yb = vec![0.0; n];
        b.spmv(&px, &mut yb);
        for i in 0..n {
            assert!((yb[p[i] as usize] - ya[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_increases_bandwidth_spread() {
        let a = stencil_2d(60, 60).unwrap();
        let p = jittered_permutation(a.nrows(), 600, 3);
        let b = permute_symmetric(&a, &p).unwrap();
        let bw_a = RowStats::compute(&a, 8).bw_summary().avg;
        let bw_b = RowStats::compute(&b, 8).bw_summary().avg;
        assert!(bw_b > 2.0 * bw_a, "bw {bw_a} -> {bw_b}");
    }

    #[test]
    fn rejects_wrong_length() {
        let a = stencil_2d(4, 4).unwrap();
        assert!(permute_symmetric(&a, &[0, 1]).is_err());
    }
}
