//! Circuit-simulation matrix generator.
//!
//! Models matrices such as `rajat30`, `ASIC_680k`, `FullChip` and
//! `circuit5M`: the overwhelming majority of rows are very short
//! (diagonal plus a handful of couplings), while a few rows — power
//! and ground nets — are extremely dense, concentrating a large
//! fraction of all nonzeros. Those dense rows serialise on a single
//! thread under row partitioning (`IMB`) and their long streaming
//! inner loops are compute-limited (`CMP`).

use crate::index_u32;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Generates an `n x n` circuit-like matrix.
///
/// * `n_dense_rows` — number of power-net rows;
/// * `dense_fill` — fraction of all columns present in each dense row
///   (`0 < dense_fill <= 1`), e.g. `0.5` mimics `rajat30`'s rows that
///   touch a large share of the circuit;
/// * `sparse_nnz_per_row` — nonzeros in ordinary rows (diagonal plus
///   near-diagonal couplings plus one long-range coupling).
///
/// # Errors
/// [`SparseError::InvalidGenerator`] on degenerate parameters.
pub fn circuit(
    n: usize,
    n_dense_rows: usize,
    dense_fill: f64,
    sparse_nnz_per_row: usize,
    seed: u64,
) -> Result<Csr> {
    if n == 0 {
        return Err(SparseError::InvalidGenerator("n must be positive".into()));
    }
    if n_dense_rows >= n {
        return Err(SparseError::InvalidGenerator(format!(
            "n_dense_rows {n_dense_rows} must be < n {n}"
        )));
    }
    if !(dense_fill > 0.0 && dense_fill <= 1.0) {
        return Err(SparseError::InvalidGenerator(format!(
            "dense_fill {dense_fill} outside (0,1]"
        )));
    }
    if sparse_nnz_per_row == 0 {
        return Err(SparseError::InvalidGenerator("sparse_nnz_per_row must be >= 1".into()));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let dense_len = ((n as f64 * dense_fill) as usize).max(1);
    let est = n * sparse_nnz_per_row + n_dense_rows * dense_len;
    let mut coo = Coo::with_capacity(n, n, est)?;

    // Dense rows are spread through the matrix (not adjacent), as in
    // real circuit orderings; deterministic placement keeps the
    // generator reproducible independent of rng call order.
    let dense_stride = n / (n_dense_rows + 1).max(1);
    let dense_rows: Vec<usize> =
        (1..=n_dense_rows).map(|k| (k * dense_stride).min(n - 1)).collect();

    let mut is_dense = vec![false; n];
    for &r in &dense_rows {
        is_dense[r] = true;
    }

    let mut buf = Vec::new();
    for (i, &dense) in is_dense.iter().enumerate() {
        if dense {
            // Power net: evenly strided columns across the whole row.
            let stride = (n as f64 / dense_len as f64).max(1.0);
            let mut row_abs = 0.0;
            let mut prev = usize::MAX;
            for k in 0..dense_len {
                let c = ((k as f64 * stride) as usize).min(n - 1);
                if c == prev || c == i {
                    continue;
                }
                prev = c;
                let v = super::random_value(&mut rng);
                row_abs += v.abs();
                coo.push(i, c, v)?;
            }
            coo.push(i, i, row_abs + 1.0)?;
        } else {
            // Ordinary net: diagonal + local couplings + one long hop.
            let k = sparse_nnz_per_row;
            buf.clear();
            let mut row_abs = 0.0;
            for d in 1..k {
                let c = if d == k - 1 {
                    rng.gen_range(0..n) // long-range coupling
                } else {
                    // local coupling within +-8
                    let off = rng.gen_range(1..=8usize);
                    if rng.gen_bool(0.5) {
                        i.saturating_sub(off)
                    } else {
                        (i + off).min(n - 1)
                    }
                };
                if c != i && !buf.contains(&index_u32(c)) {
                    buf.push(index_u32(c));
                    let v = super::random_value(&mut rng);
                    row_abs += v.abs();
                    coo.push(i, c, v)?;
                }
            }
            coo.push(i, i, row_abs + 1.0)?;
        }
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn rejects_bad_parameters() {
        assert!(circuit(0, 1, 0.5, 3, 1).is_err());
        assert!(circuit(10, 10, 0.5, 3, 1).is_err());
        assert!(circuit(10, 1, 0.0, 3, 1).is_err());
        assert!(circuit(10, 1, 0.5, 0, 1).is_err());
    }

    #[test]
    fn dense_rows_dominate_nnz() {
        let a = circuit(10_000, 4, 0.6, 4, 21).unwrap();
        let st = RowStats::compute(&a, 8);
        let s = st.nnz_summary();
        assert!(s.max > 1000.0, "max row {}", s.max);
        assert!(s.avg < 20.0, "avg row {}", s.avg);
        // The 4 dense rows carry a large share of all nonzeros.
        let mut lens: Vec<u32> = st.nnz.clone();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let top4: u32 = lens[..4].iter().sum();
        assert!(f64::from(top4) > 0.3 * a.nnz() as f64);
    }

    #[test]
    fn deterministic() {
        assert_eq!(circuit(500, 2, 0.5, 3, 7).unwrap(), circuit(500, 2, 0.5, 3, 7).unwrap());
    }

    #[test]
    fn sparse_rows_stay_short() {
        let a = circuit(2000, 2, 0.5, 5, 9).unwrap();
        let st = RowStats::compute(&a, 8);
        let short = st.nnz.iter().filter(|&&k| k <= 6).count();
        assert!(short >= 1990);
    }

    #[test]
    fn all_rows_have_diagonal() {
        let a = circuit(300, 2, 0.4, 4, 3).unwrap();
        for (i, &d) in a.diagonal().iter().enumerate() {
            assert!(d >= 1.0, "row {i} diagonal {d}");
        }
    }
}
