//! Banded / FEM-like matrix generator.
//!
//! Models matrices such as `consph` or `boneS10`: nonzeros cluster in
//! a band around the diagonal with near-uniform row lengths, giving
//! regular, prefetch-friendly access to `x` — the classic
//! memory-bandwidth-bound (`MB`) archetype.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Generates an `n x n` banded matrix.
///
/// * `half_bandwidth` — nonzeros lie within `± half_bandwidth` of the
///   diagonal;
/// * `fill` — fraction of in-band positions that are nonzero
///   (`0 < fill <= 1`); `fill = 1` gives a dense band;
/// * the diagonal is always present and boosted to make the matrix
///   strictly diagonally dominant (so CG/GMRES tests converge).
///
/// # Errors
/// [`SparseError::InvalidGenerator`] for `n == 0`, zero bandwidth or
/// `fill` outside `(0, 1]`.
pub fn banded(n: usize, half_bandwidth: usize, fill: f64, seed: u64) -> Result<Csr> {
    if n == 0 {
        return Err(SparseError::InvalidGenerator("n must be positive".into()));
    }
    if half_bandwidth == 0 {
        return Err(SparseError::InvalidGenerator("half_bandwidth must be >= 1".into()));
    }
    if !(fill > 0.0 && fill <= 1.0) {
        return Err(SparseError::InvalidGenerator(format!("fill {fill} outside (0, 1]")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let est = (n as f64 * (2.0 * half_bandwidth as f64 * fill + 1.0)) as usize;
    let mut coo = Coo::with_capacity(n, n, est)?;
    let mut buf = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(half_bandwidth);
        let hi = (i + half_bandwidth + 1).min(n);
        let mut row_abs = 0.0;
        if fill >= 0.2 {
            // Dense band: Bernoulli sweep over every in-band slot.
            for c in lo..hi {
                if c == i {
                    continue;
                }
                if fill >= 1.0 || rng.gen_bool(fill) {
                    let v = super::random_value(&mut rng);
                    row_abs += v.abs();
                    coo.push(i, c, v)?;
                }
            }
        } else {
            // Sparse band: draw ~fill * width distinct offsets directly,
            // avoiding an O(band) sweep per row.
            let width = hi - lo;
            let k = ((width as f64 * fill).round() as usize).max(1);
            super::sample_distinct(&mut rng, width, k, &mut buf);
            for &off in &buf {
                let c = lo + off as usize;
                if c == i {
                    continue;
                }
                let v = super::random_value(&mut rng);
                row_abs += v.abs();
                coo.push(i, c, v)?;
            }
        }
        coo.push(i, i, row_abs + 1.0)?;
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(banded(0, 2, 0.5, 1).is_err());
        assert!(banded(10, 0, 0.5, 1).is_err());
        assert!(banded(10, 2, 0.0, 1).is_err());
        assert!(banded(10, 2, 1.5, 1).is_err());
    }

    #[test]
    fn structure_is_banded() {
        let a = banded(200, 5, 1.0, 42).unwrap();
        for (i, cols, _) in a.rows() {
            for &c in cols {
                assert!((c as i64 - i as i64).unsigned_abs() <= 5);
            }
        }
        // dense band: interior rows have exactly 11 nonzeros
        assert_eq!(a.row_nnz(100), 11);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = banded(64, 3, 0.7, 9).unwrap();
        let b = banded(64, 3, 0.7, 9).unwrap();
        let c = banded(64, 3, 0.7, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn diagonally_dominant() {
        let a = banded(100, 4, 0.8, 5).unwrap();
        for (i, cols, vals) in a.rows() {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (k, &c) in cols.iter().enumerate() {
                if c as usize == i {
                    diag = vals[k];
                } else {
                    off += vals[k].abs();
                }
            }
            assert!(diag > off, "row {i} not dominant");
        }
    }

    #[test]
    fn partial_fill_reduces_nnz() {
        let dense = banded(500, 8, 1.0, 1).unwrap();
        let sparse = banded(500, 8, 0.3, 1).unwrap();
        assert!(sparse.nnz() < dense.nnz());
        assert!(sparse.nnz() > 500); // at least the diagonal plus some band
    }
}
