//! Finite-difference stencil generators (2-D 5-point, 3-D 7-point).
//!
//! Models PDE discretisation matrices such as `parabolic_fem` or
//! `thermal2`: very short rows (5–7 nonzeros) at large distances
//! (`± nx`, `± nx*ny`), which stream well but expose loop overhead and
//! mild irregularity on many-core platforms.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// 5-point Laplacian on an `nx x ny` grid (`n = nx*ny` unknowns).
///
/// # Errors
/// [`SparseError::InvalidGenerator`] when either dimension is zero.
pub fn stencil_2d(nx: usize, ny: usize) -> Result<Csr> {
    if nx == 0 || ny == 0 {
        return Err(SparseError::InvalidGenerator("grid dimensions must be positive".into()));
    }
    let n = nx * ny;
    let mut coo = Coo::with_capacity(n, n, 5 * n)?;
    for j in 0..ny {
        for i in 0..nx {
            let row = j * nx + i;
            coo.push(row, row, 4.0)?;
            if i > 0 {
                coo.push(row, row - 1, -1.0)?;
            }
            if i + 1 < nx {
                coo.push(row, row + 1, -1.0)?;
            }
            if j > 0 {
                coo.push(row, row - nx, -1.0)?;
            }
            if j + 1 < ny {
                coo.push(row, row + nx, -1.0)?;
            }
        }
    }
    Ok(Csr::from_coo(&coo))
}

/// 7-point Laplacian on an `nx x ny x nz` grid.
///
/// # Errors
/// [`SparseError::InvalidGenerator`] when any dimension is zero.
pub fn stencil_3d(nx: usize, ny: usize, nz: usize) -> Result<Csr> {
    if nx == 0 || ny == 0 || nz == 0 {
        return Err(SparseError::InvalidGenerator("grid dimensions must be positive".into()));
    }
    let n = nx * ny * nz;
    let plane = nx * ny;
    let mut coo = Coo::with_capacity(n, n, 7 * n)?;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let row = k * plane + j * nx + i;
                coo.push(row, row, 6.0)?;
                if i > 0 {
                    coo.push(row, row - 1, -1.0)?;
                }
                if i + 1 < nx {
                    coo.push(row, row + 1, -1.0)?;
                }
                if j > 0 {
                    coo.push(row, row - nx, -1.0)?;
                }
                if j + 1 < ny {
                    coo.push(row, row + nx, -1.0)?;
                }
                if k > 0 {
                    coo.push(row, row - plane, -1.0)?;
                }
                if k + 1 < nz {
                    coo.push(row, row + plane, -1.0)?;
                }
            }
        }
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        assert!(stencil_2d(0, 4).is_err());
        assert!(stencil_3d(2, 0, 2).is_err());
    }

    #[test]
    fn stencil_2d_counts() {
        let a = stencil_2d(10, 10).unwrap();
        assert_eq!(a.nrows(), 100);
        // 5*100 - 2*10 (x edges) - 2*10 (y edges) = 460
        assert_eq!(a.nnz(), 460);
        // interior row has 5 nonzeros
        assert_eq!(a.row_nnz(5 * 10 + 5), 5);
        // corner has 3
        assert_eq!(a.row_nnz(0), 3);
    }

    #[test]
    fn stencil_2d_is_symmetric() {
        let a = stencil_2d(8, 6).unwrap();
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn stencil_3d_counts() {
        let a = stencil_3d(4, 4, 4).unwrap();
        assert_eq!(a.nrows(), 64);
        // 7*64 - 2*16*3 = 448 - 96 = 352
        assert_eq!(a.nnz(), 352);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn laplacian_rows_sum_nonnegative() {
        // boundary rows sum > 0, interior rows sum to 0: weak diagonal dominance
        let a = stencil_2d(5, 5).unwrap();
        for (_, cols, vals) in a.rows() {
            let _ = cols;
            let s: f64 = vals.iter().sum();
            assert!(s >= -1e-14);
        }
    }

    #[test]
    fn spmv_constant_vector_vanishes_in_interior() {
        let a = stencil_2d(6, 6).unwrap();
        let x = vec![1.0; 36];
        let mut y = vec![0.0; 36];
        a.spmv(&x, &mut y);
        // interior node (3,3): 4 - 4 = 0
        assert_eq!(y[3 * 6 + 3], 0.0);
        // corner: 4 - 2 = 2
        assert_eq!(y[0], 2.0);
    }
}
