//! Power-law (scale-free graph) matrix generator.
//!
//! Models web/citation/social graphs (`web-Google`, `flickr`,
//! `webbase-1M`): row lengths follow a truncated Zipf distribution
//! (many very short rows, a heavy tail of hubs) and column targets are
//! skewed toward popular vertices. The combination produces both
//! irregular `x` accesses (`ML`) and thread imbalance (`IMB`).

use crate::index_u32;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Generates an `n x n` power-law matrix.
///
/// * `avg_deg` — target average nonzeros per row;
/// * `alpha` — Zipf exponent of the row-length distribution (typical
///   graphs: 1.8–2.5; smaller = heavier tail = more imbalance);
/// * column targets are drawn with probability proportional to
///   `(rank+1)^-0.8`, concentrating accesses on hub columns.
///
/// # Errors
/// [`SparseError::InvalidGenerator`] for `n == 0`, `avg_deg == 0` or
/// `alpha <= 1`.
pub fn powerlaw(n: usize, avg_deg: usize, alpha: f64, seed: u64) -> Result<Csr> {
    if n == 0 {
        return Err(SparseError::InvalidGenerator("n must be positive".into()));
    }
    if avg_deg == 0 {
        return Err(SparseError::InvalidGenerator("avg_deg must be >= 1".into()));
    }
    if alpha <= 1.0 {
        return Err(SparseError::InvalidGenerator(format!(
            "alpha {alpha} must exceed 1 for a finite mean"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let max_deg = n.min(avg_deg.saturating_mul(256)).max(1);

    // Draw row degrees from a truncated Zipf via inverse-CDF on a
    // precomputed table, then rescale to hit the average.
    let mut weights = Vec::with_capacity(max_deg);
    let mut acc = 0.0f64;
    for k in 1..=max_deg {
        acc += (k as f64).powf(-alpha);
        weights.push(acc);
    }
    let total = acc;
    let mut degs: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..total);
            let idx = weights.partition_point(|&w| w < u);
            idx + 1
        })
        .collect();
    // Rescale sum of degrees toward n * avg_deg (integer-safe).
    let want = n * avg_deg;
    let have: usize = degs.iter().sum();
    if have > 0 && have != want {
        let ratio = want as f64 / have as f64;
        for d in &mut degs {
            *d = ((*d as f64 * ratio).round() as usize).clamp(1, n);
        }
    }

    let mut coo = Coo::with_capacity(n, n, degs.iter().sum::<usize>())?;
    let mut buf = Vec::new();
    for (i, &deg) in degs.iter().enumerate() {
        // Skewed column sampling: mix hub-biased and uniform draws.
        buf.clear();
        while buf.len() < deg {
            let c = if rng.gen_bool(0.5) {
                // Hub bias: quadratic transform concentrates near 0.
                let u: f64 = rng.gen();
                ((u * u) * n as f64) as usize % n
            } else {
                rng.gen_range(0..n)
            };
            buf.push(index_u32(c));
            if buf.len() == deg {
                buf.sort_unstable();
                buf.dedup();
            }
        }
        buf.sort_unstable();
        buf.dedup();
        for &c in buf.iter() {
            coo.push(i, c as usize, super::random_value(&mut rng))?;
        }
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn rejects_bad_parameters() {
        assert!(powerlaw(0, 4, 2.0, 1).is_err());
        assert!(powerlaw(10, 0, 2.0, 1).is_err());
        assert!(powerlaw(10, 4, 1.0, 1).is_err());
    }

    #[test]
    fn average_degree_near_target() {
        let a = powerlaw(5000, 8, 2.0, 11).unwrap();
        let avg = a.nnz() as f64 / a.nrows() as f64;
        assert!((4.0..=12.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn row_lengths_are_skewed() {
        let a = powerlaw(5000, 8, 1.8, 13).unwrap();
        let st = RowStats::compute(&a, 8);
        let s = st.nnz_summary();
        // heavy tail: max far above average, sd comparable to mean
        assert!(s.max > 4.0 * s.avg, "max {} avg {}", s.max, s.avg);
        assert!(s.sd > 0.5 * s.avg);
    }

    #[test]
    fn hub_columns_receive_more_entries() {
        let a = powerlaw(4000, 8, 2.0, 17).unwrap();
        let t = a.transpose();
        let low: usize = (0..400).map(|i| t.row_nnz(i)).sum();
        let high: usize = (3600..4000).map(|i| t.row_nnz(i)).sum();
        assert!(low > 2 * high, "hubs {low} vs tail {high}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(powerlaw(300, 5, 2.0, 3).unwrap(), powerlaw(300, 5, 2.0, 3).unwrap());
    }
}
