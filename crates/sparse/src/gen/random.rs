//! Uniform random sparse matrix generator.
//!
//! Columns are drawn uniformly over the full matrix width, so accesses
//! to `x` have no locality whatsoever: the archetype of a
//! memory-latency-bound (`ML`) matrix that defeats hardware
//! prefetchers.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Generates an `n x n` matrix with exactly `nnz_per_row` uniformly
/// scattered nonzeros in every row (clamped to `n`), plus a dominant
/// diagonal.
///
/// # Errors
/// [`SparseError::InvalidGenerator`] for `n == 0` or
/// `nnz_per_row == 0`.
pub fn random_uniform(n: usize, nnz_per_row: usize, seed: u64) -> Result<Csr> {
    if n == 0 {
        return Err(SparseError::InvalidGenerator("n must be positive".into()));
    }
    if nnz_per_row == 0 {
        return Err(SparseError::InvalidGenerator("nnz_per_row must be >= 1".into()));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let k = nnz_per_row.min(n);
    let mut coo = Coo::with_capacity(n, n, n * (k + 1))?;
    let mut buf = Vec::with_capacity(k);
    for i in 0..n {
        super::sample_distinct(&mut rng, n, k, &mut buf);
        let mut row_abs = 0.0;
        let mut has_diag = false;
        for &c in &buf {
            if c as usize == i {
                has_diag = true;
                continue;
            }
            let v = super::random_value(&mut rng);
            row_abs += v.abs();
            coo.push(i, c as usize, v)?;
        }
        let _ = has_diag;
        coo.push(i, i, row_abs + 1.0)?;
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(random_uniform(0, 4, 1).is_err());
        assert!(random_uniform(4, 0, 1).is_err());
    }

    #[test]
    fn row_lengths_near_target() {
        let a = random_uniform(500, 10, 3).unwrap();
        for i in 0..a.nrows() {
            let k = a.row_nnz(i);
            assert!((10..=11).contains(&k), "row {i} has {k}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_uniform(100, 8, 5).unwrap(), random_uniform(100, 8, 5).unwrap());
    }

    #[test]
    fn columns_span_full_width() {
        let a = random_uniform(2000, 16, 7).unwrap();
        let max_col = a.colind().iter().copied().max().unwrap() as usize;
        let min_col = a.colind().iter().copied().min().unwrap() as usize;
        assert!(max_col > 1500);
        assert!(min_col < 500);
    }

    #[test]
    fn diagonal_dominance_holds() {
        let a = random_uniform(200, 6, 9).unwrap();
        let d = a.diagonal();
        for (i, &di) in d.iter().enumerate() {
            let (cols, vals) = a.row(i);
            let off: f64 =
                cols.iter().zip(vals).filter(|(&c, _)| c as usize != i).map(|(_, v)| v.abs()).sum();
            assert!(di > off);
        }
    }

    #[test]
    fn nnz_per_row_clamped_to_n() {
        let a = random_uniform(4, 100, 2).unwrap();
        assert!(a.nnz() <= 16);
    }
}
