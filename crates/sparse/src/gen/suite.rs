//! The representative matrix suite and training corpus.
//!
//! [`SUITE`] names one synthetic stand-in for every matrix of the
//! paper's representative set (Figs. 1, 3, 6 and Table 4), matched in
//! archetype and — at `scale = 1.0` — in row-length statistics at
//! roughly 1/4 of the original dimensions (so a laptop-class machine
//! can regenerate every experiment; pass `scale > 1` to approach the
//! original sizes).
//!
//! [`corpus`] samples the archetype space to produce the 210-matrix
//! training set used to fit the feature-guided classifier
//! (paper §III-D).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Csr;
use crate::Result;

use super::{banded, block_dense, circuit, powerlaw, random_uniform, stencil_2d, stencil_3d};

/// Structural archetype with generation parameters at `scale = 1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Archetype {
    /// Dense-band FEM matrix: `banded(n, half_bandwidth, fill)`.
    Banded {
        /// Rows at scale 1.
        n: usize,
        /// Band half-width.
        half_bandwidth: usize,
        /// In-band fill fraction.
        fill: f64,
    },
    /// 5-point 2-D stencil on an `nx x ny` grid, with node numbering
    /// scrambled inside a window of `jitter` (0 = ideal grid order;
    /// real FEM meshes are only locally coherent).
    Stencil2d {
        /// Grid width at scale 1.
        nx: usize,
        /// Grid height at scale 1.
        ny: usize,
        /// Numbering jitter window at scale 1.
        jitter: usize,
    },
    /// 7-point 3-D stencil on an `nx x ny x nz` grid with jittered
    /// numbering (see [`Archetype::Stencil2d`]).
    Stencil3d {
        /// Grid dimensions at scale 1.
        nx: usize,
        /// See `nx`.
        ny: usize,
        /// See `nx`.
        nz: usize,
        /// Numbering jitter window at scale 1.
        jitter: usize,
    },
    /// Fully random columns: `random_uniform(n, nnz_per_row)`.
    RandomUniform {
        /// Rows at scale 1.
        n: usize,
        /// Nonzeros per row.
        nnz_per_row: usize,
    },
    /// Scale-free graph: `powerlaw(n, avg_deg, alpha)`.
    Powerlaw {
        /// Rows at scale 1.
        n: usize,
        /// Average degree.
        avg_deg: usize,
        /// Zipf exponent.
        alpha: f64,
    },
    /// Circuit with dense power nets:
    /// `circuit(n, n_dense_rows, dense_fill, sparse_nnz_per_row)`.
    Circuit {
        /// Rows at scale 1.
        n: usize,
        /// Number of dense rows.
        n_dense_rows: usize,
        /// Fraction of columns in each dense row.
        dense_fill: f64,
        /// Nonzeros in ordinary rows.
        sparse_nnz_per_row: usize,
    },
    /// Dense tiles: `block_dense(n, block, extra_blocks)`.
    BlockDense {
        /// Rows at scale 1.
        n: usize,
        /// Tile edge length.
        block: usize,
        /// Off-diagonal tiles per block row.
        extra_blocks: usize,
    },
}

/// A named member of the representative suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteMatrix {
    /// Name of the UF matrix this preset stands in for.
    pub name: &'static str,
    /// Rows of the original UF matrix (for documentation).
    pub paper_n: usize,
    /// Nonzeros of the original UF matrix (for documentation).
    pub paper_nnz: usize,
    /// Generator archetype and scale-1 parameters.
    pub archetype: Archetype,
}

impl SuiteMatrix {
    /// Generates the matrix at the given size scale (`1.0` = default
    /// reduced size, see module docs). Deterministic: the seed is
    /// derived from the preset name.
    ///
    /// # Errors
    /// Propagates generator parameter errors (only reachable with
    /// extreme scales that collapse a dimension to zero).
    pub fn generate(&self, scale: f64) -> Result<Csr> {
        let seed = name_seed(self.name);
        let s = |v: usize| ((v as f64 * scale).round() as usize).max(4);
        let sq = |v: usize| ((v as f64 * scale.sqrt()).round() as usize).max(2);
        let cb = |v: usize| ((v as f64 * scale.cbrt()).round() as usize).max(2);
        match self.archetype {
            Archetype::Banded { n, half_bandwidth, fill } => {
                banded(s(n), half_bandwidth.max(1), fill, seed)
            }
            Archetype::Stencil2d { nx, ny, jitter } => {
                jittered(stencil_2d(sq(nx), sq(ny))?, (jitter as f64 * scale) as usize, seed)
            }
            Archetype::Stencil3d { nx, ny, nz, jitter } => jittered(
                stencil_3d(cb(nx), cb(ny), cb(nz))?,
                (jitter as f64 * scale) as usize,
                seed,
            ),
            Archetype::RandomUniform { n, nnz_per_row } => random_uniform(s(n), nnz_per_row, seed),
            Archetype::Powerlaw { n, avg_deg, alpha } => powerlaw(s(n), avg_deg, alpha, seed),
            Archetype::Circuit { n, n_dense_rows, dense_fill, sparse_nnz_per_row } => {
                circuit(s(n), n_dense_rows, dense_fill, sparse_nnz_per_row, seed)
            }
            Archetype::BlockDense { n, block, extra_blocks } => {
                block_dense(s(n), block.min(s(n)), extra_blocks, seed)
            }
        }
    }
}

/// Applies a locality-jittered symmetric permutation (no-op for
/// `window == 0`).
fn jittered(a: Csr, window: usize, seed: u64) -> Result<Csr> {
    if window == 0 {
        return Ok(a);
    }
    let perm = super::permute::jittered_permutation(a.nrows(), window, seed ^ 0x9e37);
    super::permute::permute_symmetric(&a, &perm)
}

/// Deterministic seed from a preset name.
fn name_seed(name: &str) -> u64 {
    // FNV-1a, good enough for seeding and dependency-free.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The representative suite: one stand-in per paper matrix.
///
/// Scale-1 sizes are chosen so each stand-in falls on the same side of
/// the paper platforms' last-level caches (30-55 MiB) as the original
/// UF matrix — the `size` feature and the MB-vs-CMP distinction depend
/// on it — while staying generatable in seconds.
pub const SUITE: &[SuiteMatrix] = &[
    SuiteMatrix {
        name: "consph",
        paper_n: 83_334,
        paper_nnz: 6_010_480,
        archetype: Archetype::Banded { n: 42_000, half_bandwidth: 40, fill: 0.9 },
    },
    SuiteMatrix {
        name: "boneS10",
        paper_n: 914_898,
        paper_nnz: 40_878_708,
        archetype: Archetype::Banded { n: 100_000, half_bandwidth: 24, fill: 0.95 },
    },
    SuiteMatrix {
        name: "nd24k",
        paper_n: 72_000,
        paper_nnz: 28_715_634,
        archetype: Archetype::BlockDense { n: 24_000, block: 150, extra_blocks: 1 },
    },
    SuiteMatrix {
        name: "human_gene1",
        paper_n: 22_283,
        paper_nnz: 24_669_643,
        archetype: Archetype::BlockDense { n: 8_000, block: 350, extra_blocks: 1 },
    },
    SuiteMatrix {
        name: "poisson3Db",
        paper_n: 85_623,
        paper_nnz: 2_374_949,
        archetype: Archetype::Banded { n: 86_000, half_bandwidth: 2_500, fill: 0.0056 },
    },
    SuiteMatrix {
        name: "offshore",
        paper_n: 259_789,
        paper_nnz: 4_242_673,
        archetype: Archetype::Banded { n: 260_000, half_bandwidth: 3_000, fill: 0.0027 },
    },
    SuiteMatrix {
        name: "parabolic_fem",
        paper_n: 525_825,
        paper_nnz: 3_674_625,
        archetype: Archetype::Stencil2d { nx: 725, ny: 725, jitter: 12_000 },
    },
    SuiteMatrix {
        name: "thermal2",
        paper_n: 1_228_045,
        paper_nnz: 8_580_313,
        archetype: Archetype::Stencil3d { nx: 90, ny: 90, nz: 90, jitter: 16_000 },
    },
    SuiteMatrix {
        name: "web_google",
        paper_n: 916_428,
        paper_nnz: 5_105_039,
        archetype: Archetype::Powerlaw { n: 460_000, avg_deg: 6, alpha: 2.1 },
    },
    SuiteMatrix {
        name: "citationCiteseer",
        paper_n: 268_495,
        paper_nnz: 2_313_294,
        archetype: Archetype::Powerlaw { n: 268_000, avg_deg: 9, alpha: 2.0 },
    },
    SuiteMatrix {
        name: "flickr",
        paper_n: 820_878,
        paper_nnz: 9_837_214,
        archetype: Archetype::Powerlaw { n: 410_000, avg_deg: 12, alpha: 1.7 },
    },
    SuiteMatrix {
        name: "webbase_1M",
        paper_n: 1_000_005,
        paper_nnz: 3_105_536,
        archetype: Archetype::Powerlaw { n: 1_000_000, avg_deg: 3, alpha: 2.3 },
    },
    SuiteMatrix {
        name: "rajat30",
        paper_n: 643_994,
        paper_nnz: 6_175_244,
        archetype: Archetype::Circuit {
            n: 320_000,
            n_dense_rows: 6,
            dense_fill: 0.35,
            sparse_nnz_per_row: 9,
        },
    },
    SuiteMatrix {
        name: "ASIC_680k",
        paper_n: 682_862,
        paper_nnz: 3_871_773,
        archetype: Archetype::Circuit {
            n: 400_000,
            n_dense_rows: 4,
            dense_fill: 0.3,
            sparse_nnz_per_row: 5,
        },
    },
    SuiteMatrix {
        name: "FullChip",
        paper_n: 2_987_012,
        paper_nnz: 26_621_990,
        archetype: Archetype::Circuit {
            n: 600_000,
            n_dense_rows: 8,
            dense_fill: 0.2,
            sparse_nnz_per_row: 8,
        },
    },
    SuiteMatrix {
        name: "circuit5M",
        paper_n: 5_558_326,
        paper_nnz: 59_524_291,
        archetype: Archetype::Circuit {
            n: 800_000,
            n_dense_rows: 10,
            dense_fill: 0.25,
            sparse_nnz_per_row: 8,
        },
    },
    SuiteMatrix {
        name: "degme",
        paper_n: 185_501,
        paper_nnz: 8_127_528,
        archetype: Archetype::Circuit {
            n: 185_000,
            n_dense_rows: 12,
            dense_fill: 0.5,
            sparse_nnz_per_row: 7,
        },
    },
];

/// Looks up a suite preset by name.
pub fn suite_by_name(name: &str) -> Option<&'static SuiteMatrix> {
    SUITE.iter().find(|m| m.name == name)
}

/// One entry of the training corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Generated name, e.g. `powerlaw_017`.
    pub name: String,
    /// The matrix.
    pub matrix: Csr,
}

/// Generates a training corpus of `count` matrices spanning all
/// archetypes with randomised parameters (the stand-in for the
/// paper's 210 UF matrices). Deterministic per seed.
///
/// `size_factor` scales every matrix dimension (1.0 gives N in
/// roughly 2k–40k, adequate for classifier training; tests can pass
/// 0.1 for speed).
pub fn corpus(count: usize, size_factor: f64, seed: u64) -> Vec<CorpusEntry> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut idx = 0usize;
    while out.len() < count {
        let kind = idx % 6;
        let mseed = rng.gen::<u64>();
        let dim = |lo: usize, hi: usize, rng: &mut SmallRng| -> usize {
            let v = rng.gen_range(lo..hi);
            ((v as f64 * size_factor) as usize).max(16)
        };
        let (name, m) = match kind {
            0 => {
                let n = dim(4_000, 40_000, &mut rng);
                let hb = rng.gen_range(4..64usize);
                let fill = rng.gen_range(0.3..1.0f64);
                ("banded", banded(n, hb, fill, mseed))
            }
            1 => {
                let nx = dim(40, 220, &mut rng).max(4);
                let ny = dim(40, 220, &mut rng).max(4);
                ("stencil2d", stencil_2d(nx, ny))
            }
            2 => {
                let n = dim(3_000, 30_000, &mut rng);
                let k = rng.gen_range(4..48usize);
                ("random", random_uniform(n, k, mseed))
            }
            3 => {
                let n = dim(5_000, 40_000, &mut rng);
                let deg = rng.gen_range(3..16usize);
                let alpha = rng.gen_range(1.6..2.6f64);
                ("powerlaw", powerlaw(n, deg, alpha, mseed))
            }
            4 => {
                let n = dim(5_000, 40_000, &mut rng);
                let dense = rng.gen_range(1..10usize);
                let fill = rng.gen_range(0.1..0.6f64);
                let sp = rng.gen_range(3..12usize);
                ("circuit", circuit(n, dense, fill, sp, mseed))
            }
            _ => {
                let n = dim(1_000, 8_000, &mut rng);
                let block = rng.gen_range(16..128usize).min(n);
                let extra = rng.gen_range(0..3usize);
                ("blockdense", block_dense(n, block, extra, mseed))
            }
        };
        idx += 1;
        let m = match m {
            Ok(m) => m,
            Err(_) => continue, // degenerate sampled parameters: resample
        };
        out.push(CorpusEntry { name: format!("{name}_{:03}", out.len()), matrix: m });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn suite_has_all_paper_matrices() {
        assert_eq!(SUITE.len(), 17);
        for name in ["consph", "rajat30", "flickr", "human_gene1", "webbase_1M"] {
            assert!(suite_by_name(name).is_some(), "{name} missing");
        }
        assert!(suite_by_name("nonexistent").is_none());
    }

    #[test]
    fn tiny_scale_generates_quickly_and_validly() {
        for m in SUITE {
            let a = m.generate(0.01).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(a.nrows() >= 4, "{}", m.name);
            assert!(a.nnz() > 0, "{}", m.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = suite_by_name("rajat30").unwrap();
        assert_eq!(m.generate(0.02).unwrap(), m.generate(0.02).unwrap());
    }

    #[test]
    fn circuit_presets_have_skewed_rows() {
        let a = suite_by_name("rajat30").unwrap().generate(0.05).unwrap();
        let s = RowStats::compute(&a, 8).nnz_summary();
        assert!(s.max > 20.0 * s.avg, "max {} avg {}", s.max, s.avg);
    }

    #[test]
    fn banded_presets_are_regular() {
        let a = suite_by_name("consph").unwrap().generate(0.05).unwrap();
        let s = RowStats::compute(&a, 8).nnz_summary();
        assert!(s.sd < 0.2 * s.avg, "sd {} avg {}", s.sd, s.avg);
    }

    #[test]
    fn corpus_spans_archetypes() {
        let c = corpus(12, 0.1, 42);
        assert_eq!(c.len(), 12);
        let names: Vec<&str> = c.iter().map(|e| e.name.split('_').next().unwrap()).collect();
        for kind in ["banded", "stencil2d", "random", "powerlaw", "circuit", "blockdense"] {
            assert!(names.contains(&kind), "{kind} missing from corpus");
        }
    }

    #[test]
    fn corpus_deterministic() {
        let a = corpus(6, 0.1, 7);
        let b = corpus(6, 0.1, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
    }
}
