//! Block-dense matrix generator.
//!
//! Models matrices with long, dense, highly clustered rows such as
//! `human_gene1` (~1100 nonzeros/row) or `nd24k` (~400/row): dense
//! blocks tile the neighbourhood of the diagonal, so rows are long but
//! accesses to `x` are perfectly local. Depending on the platform's
//! bandwidth these land in the `MB` class (big working set) or `CMP`
//! (cache-resident / vectorization-hungry).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Generates an `n x n` matrix of dense `block x block` tiles.
///
/// Each block row gets the diagonal tile plus `extra_blocks` random
/// off-diagonal tiles; every selected tile is fully dense.
///
/// # Errors
/// [`SparseError::InvalidGenerator`] for zero sizes or `block > n`.
pub fn block_dense(n: usize, block: usize, extra_blocks: usize, seed: u64) -> Result<Csr> {
    if n == 0 || block == 0 {
        return Err(SparseError::InvalidGenerator("n and block must be positive".into()));
    }
    if block > n {
        return Err(SparseError::InvalidGenerator(format!("block {block} exceeds n {n}")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let nblocks = n.div_ceil(block);
    let est = n * block * (1 + extra_blocks);
    let mut coo = Coo::with_capacity(n, n, est)?;
    for bi in 0..nblocks {
        // Choose block columns: diagonal + extras (distinct).
        let mut bcols = vec![bi];
        while bcols.len() < 1 + extra_blocks.min(nblocks - 1) {
            let c = rng.gen_range(0..nblocks);
            if !bcols.contains(&c) {
                bcols.push(c);
            }
        }
        bcols.sort_unstable();
        let r0 = bi * block;
        let r1 = ((bi + 1) * block).min(n);
        for i in r0..r1 {
            let mut row_abs = 0.0;
            let mut diag_slot = None;
            for &bc in &bcols {
                let c0 = bc * block;
                let c1 = ((bc + 1) * block).min(n);
                for c in c0..c1 {
                    if c == i {
                        diag_slot = Some(c);
                        continue;
                    }
                    let v = super::random_value(&mut rng);
                    row_abs += v.abs();
                    coo.push(i, c, v)?;
                }
            }
            // Dominant diagonal (diagonal tile always included).
            debug_assert!(diag_slot.is_some());
            coo.push(i, i, row_abs + 1.0)?;
        }
    }
    Ok(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn rejects_bad_parameters() {
        assert!(block_dense(0, 4, 1, 1).is_err());
        assert!(block_dense(16, 0, 1, 1).is_err());
        assert!(block_dense(8, 16, 1, 1).is_err());
    }

    #[test]
    fn rows_are_long_and_clustered() {
        let a = block_dense(512, 64, 1, 5).unwrap();
        let st = RowStats::compute(&a, 8);
        let s = st.nnz_summary();
        assert!(s.min >= 64.0, "min row {}", s.min);
        // clustering_avg small: long runs of consecutive columns
        assert!(st.clustering_avg() < 0.1);
        // only the (at most one) inter-tile jump can miss; within-block gaps are 1
        assert!(st.misses_avg() <= 1.0);
    }

    #[test]
    fn exact_density_no_extras() {
        let a = block_dense(128, 32, 0, 3).unwrap();
        assert_eq!(a.nnz(), 128 * 32);
        for i in 0..128 {
            assert_eq!(a.row_nnz(i), 32);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(block_dense(96, 16, 2, 4).unwrap(), block_dense(96, 16, 2, 4).unwrap());
    }

    #[test]
    fn ragged_tail_block_handled() {
        let a = block_dense(100, 32, 0, 2).unwrap();
        assert_eq!(a.nrows(), 100);
        // last block row has rows 96..100 with 4-wide diagonal tile
        assert_eq!(a.row_nnz(99), 4);
    }
}
