//! Delta-compressed CSR — the paper's `MB`-class optimization.
//!
//! Column indices are stored as deltas from the previous nonzero in
//! the same row (the first nonzero of each row is stored absolutely).
//! Following Pooch & Nieder as adopted by the paper, deltas are either
//! **8-bit or 16-bit, never both**, "in order to limit the branching
//! overhead during SpMV computation". Deltas that do not fit the
//! chosen width escape to a 32-bit side stream through a sentinel
//! value, so every matrix remains representable.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Width of the delta stream. One width per matrix (paper: "8- or
/// 16-bit deltas wherever possible, but never both").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaWidth {
    /// 1-byte deltas, sentinel `u8::MAX`.
    U8,
    /// 2-byte deltas, sentinel `u16::MAX`.
    U16,
}

impl DeltaWidth {
    /// Bytes per stored delta.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            DeltaWidth::U8 => 1,
            DeltaWidth::U16 => 2,
        }
    }

    /// Largest delta representable without escaping.
    #[inline]
    pub fn max_inline(self) -> u32 {
        match self {
            DeltaWidth::U8 => u32::from(u8::MAX) - 1,
            DeltaWidth::U16 => u32::from(u16::MAX) - 1,
        }
    }
}

/// Delta stream storage, one variant per [`DeltaWidth`].
#[derive(Debug, Clone, PartialEq)]
enum Deltas {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

impl Deltas {
    fn len(&self) -> usize {
        match self {
            Deltas::U8(v) => v.len(),
            Deltas::U16(v) => v.len(),
        }
    }
}

/// CSR with delta-compressed column indices.
///
/// Layout:
/// * `rowptr` — as in CSR, indexes both `values` and the delta stream;
/// * `firstcol[i]` — absolute column of the first nonzero of row `i`
///   (0 for empty rows);
/// * `deltas[j]` — gap to the previous column for the 2nd.. nonzeros
///   of a row; the first slot of each row is a padding 0 so streams
///   stay aligned with `values`;
/// * sentinel deltas escape to `exceptions`, consumed in row-major
///   order; `exc_ptr[i]` points at row `i`'s first exception.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaCsr {
    nrows: usize,
    ncols: usize,
    width: DeltaWidth,
    rowptr: Vec<usize>,
    firstcol: Vec<u32>,
    deltas: Deltas,
    exceptions: Vec<u32>,
    exc_ptr: Vec<u32>,
    values: Vec<f64>,
}

impl DeltaCsr {
    /// Compresses `a` with an automatically chosen delta width: the
    /// width with the smaller total footprint wins (8-bit unless the
    /// escape traffic makes 16-bit cheaper).
    ///
    /// # Errors
    /// See [`DeltaCsr::with_width`].
    pub fn from_csr(a: &Csr) -> Result<DeltaCsr> {
        let (n8, n16) = count_escapes(a);
        let nnz = a.nnz();
        let cost8 = nnz + 4 * n8; // bytes: 1/delta + 4/escape
        let cost16 = 2 * nnz + 4 * n16;
        let width = if cost8 <= cost16 { DeltaWidth::U8 } else { DeltaWidth::U16 };
        Self::with_width(a, width)
    }

    /// Compresses `a` with an explicit delta width. All narrowing is
    /// checked: a delta that does not fit the chosen stream escapes,
    /// and anything that cannot be represented at all (non-monotone
    /// rows from [`Csr::from_raw_unchecked`], an exception count
    /// overflowing the 32-bit cursor) is an error rather than a
    /// silent wrap.
    ///
    /// # Errors
    /// [`SparseError::Corrupt`] if a row's columns decrease (delta
    /// compression requires sorted rows) or an index stream would
    /// overflow its storage type.
    pub fn with_width(a: &Csr, width: DeltaWidth) -> Result<DeltaCsr> {
        let corrupt = |detail: String| SparseError::Corrupt { format: "delta-csr", detail };
        let nrows = a.nrows();
        let nnz = a.nnz();
        let max_inline = width.max_inline();
        let mut firstcol = Vec::with_capacity(nrows);
        let mut exceptions: Vec<u32> = Vec::new();
        let mut exc_ptr = Vec::with_capacity(nrows + 1);
        let mut d8 = Vec::new();
        let mut d16 = Vec::new();
        match width {
            DeltaWidth::U8 => d8.reserve(nnz),
            DeltaWidth::U16 => d16.reserve(nnz),
        }
        let mut push = |v: u32| -> Result<()> {
            match width {
                DeltaWidth::U8 => d8.push(u8::try_from(v).map_err(|_| SparseError::Corrupt {
                    format: "delta-csr",
                    detail: format!("delta {v} does not fit the 8-bit stream"),
                })?),
                DeltaWidth::U16 => {
                    d16.push(u16::try_from(v).map_err(|_| SparseError::Corrupt {
                        format: "delta-csr",
                        detail: format!("delta {v} does not fit the 16-bit stream"),
                    })?)
                }
            }
            Ok(())
        };
        let sentinel = match width {
            DeltaWidth::U8 => u32::from(u8::MAX),
            DeltaWidth::U16 => u32::from(u16::MAX),
        };
        let cursor = |n: usize| {
            u32::try_from(n)
                .map_err(|_| corrupt("exception count overflows the 32-bit cursor".into()))
        };
        for (i, cols, _) in a.rows() {
            exc_ptr.push(cursor(exceptions.len())?);
            firstcol.push(cols.first().copied().unwrap_or(0));
            for (k, &c) in cols.iter().enumerate() {
                if k == 0 {
                    push(0)?; // alignment padding; column is in firstcol
                    continue;
                }
                let gap = c.checked_sub(cols[k - 1]).ok_or_else(|| {
                    corrupt(format!(
                        "columns of row {i} decrease at position {k}; \
                         delta compression requires sorted rows"
                    ))
                })?;
                if gap <= max_inline {
                    push(gap)?;
                } else {
                    push(sentinel)?;
                    exceptions.push(gap);
                }
            }
        }
        exc_ptr.push(cursor(exceptions.len())?);
        Ok(DeltaCsr {
            nrows,
            ncols: a.ncols(),
            width,
            rowptr: a.rowptr().to_vec(),
            firstcol,
            deltas: match width {
                DeltaWidth::U8 => Deltas::U8(d8),
                DeltaWidth::U16 => Deltas::U16(d16),
            },
            exceptions,
            exc_ptr,
            values: a.values().to_vec(),
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Chosen delta width.
    #[inline]
    pub fn width(&self) -> DeltaWidth {
        self.width
    }

    /// Row pointer array.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Nonzero values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of escaped (sentinel) deltas.
    #[inline]
    pub fn n_exceptions(&self) -> usize {
        self.exceptions.len()
    }

    /// Memory footprint in bytes of the compressed representation —
    /// the `S_format` that enters the `P_MB` bound when this format is
    /// selected.
    pub fn footprint_bytes(&self) -> usize {
        (self.nrows + 1) * std::mem::size_of::<usize>()
            + self.nrows * std::mem::size_of::<u32>()          // firstcol
            + self.deltas.len() * self.width.bytes()
            + self.exceptions.len() * std::mem::size_of::<u32>()
            + (self.nrows + 1) * std::mem::size_of::<u32>()    // exc_ptr
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Compression ratio of index data relative to plain CSR
    /// (`< 1.0` means the compressed form is smaller).
    pub fn index_compression_ratio(&self, original: &Csr) -> f64 {
        self.footprint_bytes() as f64 / original.footprint_bytes() as f64
    }

    /// Serial SpMV over the compressed format: `y = A * x`.
    ///
    /// # Panics
    /// Panics if vector lengths do not match the matrix shape.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        self.spmv_rows(0..self.nrows, x, y);
    }

    /// SpMV restricted to a contiguous row range (building block for
    /// the parallel kernel in `spmv-kernels`).
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        match &self.deltas {
            Deltas::U8(d) => {
                self.spmv_rows_impl(rows, x, y, d, u32::from(u8::MAX), |v| u32::from(*v))
            }
            Deltas::U16(d) => {
                self.spmv_rows_impl(rows, x, y, d, u32::from(u16::MAX), |v| u32::from(*v))
            }
        }
    }

    /// SpMV over a contiguous row range writing into a range-local
    /// output slice: `out[k] = (A*x)[rows.start + k]`. This form lets
    /// parallel callers hand each worker a disjoint `&mut` sub-slice
    /// of `y`.
    ///
    /// # Panics
    /// Panics if `out.len() != rows.len()`.
    pub fn spmv_rows_into(&self, rows: std::ops::Range<usize>, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), rows.len(), "output slice length");
        let start = rows.start;
        match &self.deltas {
            Deltas::U8(d) => self.spmv_rows_into_impl(rows, x, out, start, d, u32::from(u8::MAX)),
            Deltas::U16(d) => self.spmv_rows_into_impl(rows, x, out, start, d, u32::from(u16::MAX)),
        }
    }

    #[inline]
    fn spmv_rows_into_impl<T: Copy + Into<u32>>(
        &self,
        rows: std::ops::Range<usize>,
        x: &[f64],
        out: &mut [f64],
        start: usize,
        deltas: &[T],
        sentinel: u32,
    ) {
        for i in rows {
            let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
            let mut exc = self.exc_ptr[i] as usize;
            let mut col = self.firstcol[i];
            let mut sum = 0.0;
            // Indexed loop: `j` addresses `deltas` and `values` in
            // lockstep while threading the exception cursor.
            #[allow(clippy::needless_range_loop)]
            for j in s..e {
                if j > s {
                    let d: u32 = deltas[j].into();
                    let gap = if d == sentinel {
                        let g = self.exceptions[exc];
                        exc += 1;
                        g
                    } else {
                        d
                    };
                    col += gap;
                }
                sum += self.values[j] * x[col as usize];
            }
            out[i - start] = sum;
        }
    }

    /// Like [`DeltaCsr::spmv_rows_into`] but with every per-element
    /// bounds check elided — the compressed-format fast path.
    ///
    /// # Safety
    /// * `self` must hold a structure that passed
    ///   [`crate::validate::ValidateFormat::validate_structure`]
    ///   (i.e. the caller holds a [`crate::Validated`] witness): the
    ///   delta streams decode strictly in-bounds and the exception
    ///   cursor never overruns.
    /// * `rows.end <= self.nrows()`.
    /// * `x.len() == self.ncols()`.
    /// * `out.len() == rows.len()`.
    pub unsafe fn spmv_rows_into_unchecked(
        &self,
        rows: std::ops::Range<usize>,
        x: &[f64],
        out: &mut [f64],
    ) {
        match &self.deltas {
            // SAFETY: forwarded contract; sentinel matches the stream width.
            Deltas::U8(d) => unsafe {
                self.spmv_rows_into_unchecked_impl(rows, x, out, d, u32::from(u8::MAX))
            },
            // SAFETY: forwarded contract; sentinel matches the stream width.
            Deltas::U16(d) => unsafe {
                self.spmv_rows_into_unchecked_impl(rows, x, out, d, u32::from(u16::MAX))
            },
        }
    }

    /// # Safety
    /// Same contract as [`DeltaCsr::spmv_rows_into_unchecked`];
    /// additionally `deltas`/`sentinel` must be the matrix's own
    /// stream and its width's sentinel.
    unsafe fn spmv_rows_into_unchecked_impl<T: Copy + Into<u32>>(
        &self,
        rows: std::ops::Range<usize>,
        x: &[f64],
        out: &mut [f64],
        deltas: &[T],
        sentinel: u32,
    ) {
        let start = rows.start;
        for i in rows {
            // SAFETY: the validated rowptr has nrows + 1 entries and the
            // caller guarantees rows.end <= nrows, so i and i + 1 are in
            // bounds for rowptr and i is in bounds for exc_ptr/firstcol.
            let (s, e, mut exc, mut col) = unsafe {
                (
                    *self.rowptr.get_unchecked(i),
                    *self.rowptr.get_unchecked(i + 1),
                    *self.exc_ptr.get_unchecked(i) as usize,
                    *self.firstcol.get_unchecked(i),
                )
            };
            let mut sum = 0.0;
            for j in s..e {
                if j > s {
                    // SAFETY: the validated rowptr is monotone with
                    // rowptr[nrows] == deltas.len(), so j < deltas.len().
                    let d: u32 = unsafe { *deltas.get_unchecked(j) }.into();
                    let gap = if d == sentinel {
                        // SAFETY: validation decoded every stream and
                        // proved the exception cursor stays within
                        // exceptions.len() for each sentinel consumed.
                        let g = unsafe { *self.exceptions.get_unchecked(exc) };
                        exc += 1;
                        g
                    } else {
                        d
                    };
                    col += gap;
                }
                // SAFETY: j < values.len() as above; validation decoded
                // this exact stream and proved col < ncols at every
                // element, and the caller guarantees x.len() == ncols.
                sum += unsafe { *self.values.get_unchecked(j) * *x.get_unchecked(col as usize) };
            }
            // SAFETY: i - start < rows.len() <= out.len() by contract.
            unsafe {
                *out.get_unchecked_mut(i - start) = sum;
            }
        }
    }

    #[inline]
    fn spmv_rows_impl<T>(
        &self,
        rows: std::ops::Range<usize>,
        x: &[f64],
        y: &mut [f64],
        deltas: &[T],
        sentinel: u32,
        widen: impl Fn(&T) -> u32,
    ) {
        for i in rows {
            let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
            let mut exc = self.exc_ptr[i] as usize;
            let mut col = self.firstcol[i];
            let mut sum = 0.0;
            // Indexed loop: `j` addresses `deltas` and `values` in
            // lockstep while threading the exception cursor.
            #[allow(clippy::needless_range_loop)]
            for j in s..e {
                if j > s {
                    let d = widen(&deltas[j]);
                    let gap = if d == sentinel {
                        let g = self.exceptions[exc];
                        exc += 1;
                        g
                    } else {
                        d
                    };
                    col += gap;
                }
                sum += self.values[j] * x[col as usize];
            }
            y[i] = sum;
        }
    }

    /// Decompresses back to plain CSR (exact structural roundtrip).
    ///
    /// # Errors
    /// Propagates validation errors; a successful compression always
    /// roundtrips.
    pub fn to_csr(&self) -> Result<Csr> {
        let mut colind = Vec::with_capacity(self.nnz());
        match &self.deltas {
            Deltas::U8(d) => {
                self.decode_into(&mut colind, d, u32::from(u8::MAX), |v| u32::from(*v))
            }
            Deltas::U16(d) => {
                self.decode_into(&mut colind, d, u32::from(u16::MAX), |v| u32::from(*v))
            }
        }
        Csr::from_raw(self.nrows, self.ncols, self.rowptr.clone(), colind, self.values.clone())
    }

    fn decode_into<T>(
        &self,
        colind: &mut Vec<u32>,
        deltas: &[T],
        sentinel: u32,
        widen: impl Fn(&T) -> u32,
    ) {
        for i in 0..self.nrows {
            let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
            let mut exc = self.exc_ptr[i] as usize;
            let mut col = self.firstcol[i];
            // Indexed loop: `j` addresses `deltas` while threading the
            // exception cursor.
            #[allow(clippy::needless_range_loop)]
            for j in s..e {
                if j > s {
                    let d = widen(&deltas[j]);
                    col += if d == sentinel {
                        let g = self.exceptions[exc];
                        exc += 1;
                        g
                    } else {
                        d
                    };
                }
                colind.push(col);
            }
        }
    }

    /// Validates internal consistency (used by property tests).
    ///
    /// # Errors
    /// [`SparseError::LengthMismatch`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        if self.rowptr.len() != self.nrows + 1 {
            return Err(SparseError::LengthMismatch { detail: "rowptr".into() });
        }
        if self.deltas.len() != self.values.len() {
            return Err(SparseError::LengthMismatch { detail: "deltas vs values".into() });
        }
        if self.exc_ptr.len() != self.nrows + 1 {
            return Err(SparseError::LengthMismatch { detail: "exc_ptr".into() });
        }
        if *self.exc_ptr.last().unwrap() as usize != self.exceptions.len() {
            return Err(SparseError::LengthMismatch { detail: "exc_ptr tail".into() });
        }
        Ok(())
    }

    /// Full decode check behind [`crate::validate::ValidateFormat`]:
    /// replays every delta stream and proves each decoded column is in
    /// bounds and the exception cursor advances exactly as `exc_ptr`
    /// claims.
    fn validate_decode<T: Copy + Into<u32>>(&self, deltas: &[T], sentinel: u32) -> Result<()> {
        let corrupt = |detail: String| SparseError::Corrupt { format: "delta-csr", detail };
        let mut exc = 0usize;
        for i in 0..self.nrows {
            if self.exc_ptr[i] as usize != exc {
                return Err(corrupt(format!(
                    "exc_ptr[{i}] = {} but {exc} exceptions consumed before row {i}",
                    self.exc_ptr[i]
                )));
            }
            let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
            // Accumulate in u64 so a corrupted stream cannot wrap the
            // column accumulator past the bounds check.
            let mut col = u64::from(self.firstcol[i]);
            // Indexed loop: `j` addresses `deltas` while threading the
            // exception cursor.
            #[allow(clippy::needless_range_loop)]
            for j in s..e {
                if j > s {
                    let d: u32 = deltas[j].into();
                    col += if d == sentinel {
                        let g = self.exceptions.get(exc).copied().ok_or_else(|| {
                            corrupt(format!(
                                "row {i} consumes more exceptions than the {} stored",
                                self.exceptions.len()
                            ))
                        })?;
                        exc += 1;
                        u64::from(g)
                    } else {
                        u64::from(d)
                    };
                }
                if col >= self.ncols as u64 {
                    return Err(corrupt(format!(
                        "row {i} decodes column {col} >= ncols = {}",
                        self.ncols
                    )));
                }
            }
        }
        if exc != self.exceptions.len() {
            return Err(corrupt(format!(
                "{} exceptions stored but only {exc} consumed by the streams",
                self.exceptions.len()
            )));
        }
        if self.exc_ptr[self.nrows] as usize != exc {
            return Err(corrupt(format!(
                "exc_ptr tail = {} but the streams consume {exc} exceptions",
                self.exc_ptr[self.nrows]
            )));
        }
        Ok(())
    }
}

impl crate::validate::ValidateFormat for DeltaCsr {
    fn format_name(&self) -> &'static str {
        "delta-csr"
    }

    fn validate_structure(&self) -> Result<()> {
        let corrupt = |detail: String| SparseError::Corrupt { format: "delta-csr", detail };
        crate::validate::check_rowptr("delta-csr", &self.rowptr, self.nrows, self.values.len())?;
        if self.deltas.len() != self.values.len() {
            return Err(corrupt(format!(
                "delta stream length {} != values length {}",
                self.deltas.len(),
                self.values.len()
            )));
        }
        if self.firstcol.len() != self.nrows {
            return Err(corrupt(format!(
                "firstcol length {} != nrows = {}",
                self.firstcol.len(),
                self.nrows
            )));
        }
        if self.exc_ptr.len() != self.nrows + 1 {
            return Err(corrupt(format!(
                "exc_ptr length {} != nrows + 1 = {}",
                self.exc_ptr.len(),
                self.nrows + 1
            )));
        }
        match &self.deltas {
            Deltas::U8(d) => self.validate_decode(d, u32::from(u8::MAX)),
            Deltas::U16(d) => self.validate_decode(d, u32::from(u16::MAX)),
        }
    }
}

/// Counts deltas that would escape at 8- and 16-bit widths.
fn count_escapes(a: &Csr) -> (usize, usize) {
    let mut n8 = 0;
    let mut n16 = 0;
    for (_, cols, _) in a.rows() {
        for w in cols.windows(2) {
            let gap = w[1] - w[0];
            if gap > DeltaWidth::U8.max_inline() {
                n8 += 1;
            }
            if gap > DeltaWidth::U16.max_inline() {
                n16 += 1;
            }
        }
    }
    (n8, n16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn banded(n: usize, band: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            for c in i.saturating_sub(band)..(i + band + 1).min(n) {
                coo.push(i, c, (i + c) as f64 + 1.0).unwrap();
            }
        }
        Csr::from_coo(&coo)
    }

    fn scattered(n: usize, stride: usize) -> Csr {
        let mut coo = Coo::new(n, n * stride).unwrap();
        for i in 0..n {
            for k in 0..8.min(n) {
                coo.push(i, k * stride, 1.0 + k as f64).unwrap();
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn banded_picks_u8_and_roundtrips() {
        let a = banded(64, 2);
        let d = DeltaCsr::from_csr(&a).unwrap();
        assert_eq!(d.width(), DeltaWidth::U8);
        assert_eq!(d.n_exceptions(), 0);
        assert_eq!(d.to_csr().unwrap(), a);
        d.validate().unwrap();
    }

    #[test]
    fn scattered_needs_escapes_or_u16() {
        let a = scattered(16, 1000);
        let d8 = DeltaCsr::with_width(&a, DeltaWidth::U8).unwrap();
        assert!(d8.n_exceptions() > 0);
        assert_eq!(d8.to_csr().unwrap(), a);
        let d16 = DeltaCsr::with_width(&a, DeltaWidth::U16).unwrap();
        assert_eq!(d16.n_exceptions(), 0);
        assert_eq!(d16.to_csr().unwrap(), a);
    }

    #[test]
    fn auto_width_minimizes_footprint() {
        let a = scattered(16, 70000); // gaps exceed u16 as well
        let auto = DeltaCsr::from_csr(&a).unwrap();
        let d8 = DeltaCsr::with_width(&a, DeltaWidth::U8).unwrap();
        let d16 = DeltaCsr::with_width(&a, DeltaWidth::U16).unwrap();
        assert!(auto.footprint_bytes() <= d8.footprint_bytes().min(d16.footprint_bytes()) + 1);
    }

    #[test]
    fn spmv_matches_csr() {
        for a in [banded(50, 3), scattered(20, 700)] {
            let d = DeltaCsr::from_csr(&a).unwrap();
            let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 7) as f64 - 3.0).collect();
            let mut y_ref = vec![0.0; a.nrows()];
            let mut y = vec![0.0; a.nrows()];
            a.spmv(&x, &mut y_ref);
            d.spmv(&x, &mut y);
            for (u, v) in y.iter().zip(&y_ref) {
                assert!((u - v).abs() < 1e-12, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn spmv_rows_partial_range() {
        let a = banded(32, 1);
        let d = DeltaCsr::from_csr(&a).unwrap();
        let x = vec![1.0; a.ncols()];
        let mut y_full = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y_full);
        let mut y = vec![0.0; a.nrows()];
        d.spmv_rows(8..24, &x, &mut y);
        for i in 8..24 {
            assert_eq!(y[i], y_full[i]);
        }
        assert_eq!(y[0], 0.0);
        assert_eq!(y[31], 0.0);
    }

    #[test]
    fn compression_shrinks_regular_matrices() {
        let a = banded(256, 4);
        let d = DeltaCsr::from_csr(&a).unwrap();
        assert!(d.index_compression_ratio(&a) < 1.0);
    }

    #[test]
    fn empty_rows_handled() {
        let mut coo = Coo::new(4, 4).unwrap();
        coo.push(0, 3, 2.0).unwrap();
        coo.push(3, 0, 5.0).unwrap();
        let a = Csr::from_coo(&coo);
        let d = DeltaCsr::from_csr(&a).unwrap();
        assert_eq!(d.to_csr().unwrap(), a);
        let mut y = vec![0.0; 4];
        d.spmv(&[1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, [2.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn exact_boundary_gap_stays_inline() {
        // gap of exactly max_inline must not escape
        let mut coo = Coo::new(1, 300).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 254, 1.0).unwrap(); // u8 max_inline = 254
        let a = Csr::from_coo(&coo);
        let d = DeltaCsr::with_width(&a, DeltaWidth::U8).unwrap();
        assert_eq!(d.n_exceptions(), 0);
        let mut coo2 = Coo::new(1, 300).unwrap();
        coo2.push(0, 0, 1.0).unwrap();
        coo2.push(0, 255, 1.0).unwrap(); // gap 255 = sentinel -> escapes
        let a2 = Csr::from_coo(&coo2);
        let d2 = DeltaCsr::with_width(&a2, DeltaWidth::U8).unwrap();
        assert_eq!(d2.n_exceptions(), 1);
        assert_eq!(d2.to_csr().unwrap(), a2);
    }
}

#[cfg(test)]
mod corruption_proptests {
    use super::*;
    use crate::validate::{ValidateFormat, Validated};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every corruption of a well-formed delta-CSR buffer is
        /// rejected by the witness constructor with an error — never a
        /// panic (and in particular never an out-of-bounds decode).
        #[test]
        fn corrupted_delta_is_rejected(n in 2usize..40, seed in 0u64..1000, kind in 0usize..4) {
            let a = crate::gen::banded(n, 2, 1.0, seed).expect("generator");
            let mut d = DeltaCsr::from_csr(&a).expect("encodable");
            match kind {
                0 => *d.rowptr.last_mut().unwrap() += 1,
                1 => d.firstcol[0] = d.ncols as u32,
                2 => { d.values.pop(); }
                _ => *d.exc_ptr.last_mut().unwrap() += 1,
            }
            let err = d.validate_structure().expect_err("corruption must be caught");
            prop_assert!(err.to_string().contains("delta"), "got: {err}");
            prop_assert!(Validated::new(&d).is_err());
        }

        /// Wide random matrices exercise the escape path; truncating
        /// the exception stream must be caught by the cursor check.
        #[test]
        fn truncated_exceptions_are_rejected(n in 64usize..200, seed in 0u64..200) {
            let a = crate::gen::random_uniform(n, 12, seed).expect("generator");
            let mut d = DeltaCsr::from_csr(&a).expect("encodable");
            if d.n_exceptions() == 0 {
                // Dense enough not to escape; nothing to truncate.
                return;
            }
            d.exceptions.pop();
            prop_assert!(d.validate_structure().is_err());
        }
    }
}
