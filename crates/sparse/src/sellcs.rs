//! SELL-C-σ — the SIMD-friendly sliced-ELL format of Kreutzer et al.
//! (cited by the paper as `kreutzer2014unified`).
//!
//! Rows are sorted by length inside windows of `sigma` rows (limiting
//! how far a row can move from its original position), grouped into
//! chunks of `C` consecutive sorted rows, and each chunk is padded to
//! its own maximal length and stored **column-major** so a SIMD unit
//! processes `C` rows in lockstep. A second extension-format
//! demonstration (besides BCSR) for the plug-and-play optimization
//! pool.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::index_u32;
use crate::Result;

/// Column sentinel marking a padding slot.
pub const SELL_PAD: u32 = u32::MAX;

/// A sparse matrix in SELL-C-σ format.
#[derive(Debug, Clone, PartialEq)]
pub struct SellCs {
    nrows: usize,
    ncols: usize,
    chunk: usize,
    sigma: usize,
    /// Row permutation: `perm[i]` = original row stored at sorted
    /// position `i`.
    perm: Vec<u32>,
    /// Start of each chunk in `colind` / `values`.
    chunkptr: Vec<usize>,
    /// Width (max row length) of each chunk.
    chunk_width: Vec<u32>,
    /// Column indices, column-major within each chunk.
    colind: Vec<u32>,
    /// Values, column-major within each chunk.
    values: Vec<f64>,
    /// True (unpadded) nonzero count.
    nnz: usize,
}

impl SellCs {
    /// Converts from CSR with chunk size `chunk` (the SIMD width,
    /// typically 4–32) and sorting window `sigma >= chunk`.
    ///
    /// # Errors
    /// [`SparseError::InvalidGenerator`] when `chunk == 0` or
    /// `sigma < chunk`.
    pub fn from_csr(a: &Csr, chunk: usize, sigma: usize) -> Result<SellCs> {
        if chunk == 0 {
            return Err(SparseError::InvalidGenerator("chunk must be positive".into()));
        }
        if sigma < chunk {
            return Err(SparseError::InvalidGenerator(format!(
                "sigma {sigma} must be >= chunk {chunk}"
            )));
        }
        let nrows = a.nrows();
        // Sort rows by descending length within sigma windows.
        let mut perm: Vec<u32> = (0..index_u32(nrows)).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&i| std::cmp::Reverse(a.row_nnz(i as usize)));
        }
        let nchunks = nrows.div_ceil(chunk);
        let mut chunkptr = Vec::with_capacity(nchunks + 1);
        let mut chunk_width = Vec::with_capacity(nchunks);
        chunkptr.push(0usize);
        let mut colind = Vec::new();
        let mut values = Vec::new();
        for ci in 0..nchunks {
            let rows = &perm[ci * chunk..((ci + 1) * chunk).min(nrows)];
            let width = rows.iter().map(|&r| a.row_nnz(r as usize)).max().unwrap_or(0);
            chunk_width.push(index_u32(width));
            let base = colind.len();
            colind.resize(base + width * chunk, SELL_PAD);
            values.resize(base + width * chunk, 0.0);
            for (lane, &r) in rows.iter().enumerate() {
                let (cols, vals) = a.row(r as usize);
                for (k, &c) in cols.iter().enumerate() {
                    // Column-major: slot = base + k * chunk + lane.
                    colind[base + k * chunk + lane] = c;
                    values[base + k * chunk + lane] = vals[k];
                }
            }
            chunkptr.push(colind.len());
        }
        Ok(SellCs {
            nrows,
            ncols: a.ncols(),
            chunk,
            sigma,
            perm,
            chunkptr,
            chunk_width,
            colind,
            values,
            nnz: a.nnz(),
        })
    }

    /// Number of rows (original ordering).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True nonzero count (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Chunk height `C`.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Sorting window `σ`.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of chunks.
    #[inline]
    pub fn nchunks(&self) -> usize {
        self.chunk_width.len()
    }

    /// Fraction of stored slots that are padding.
    pub fn padding_ratio(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.values.len() as f64
    }

    /// Memory footprint in bytes (slabs incl. padding + permutation +
    /// chunk metadata).
    pub fn footprint_bytes(&self) -> usize {
        self.colind.len() * 4
            + self.values.len() * 8
            + self.perm.len() * 4
            + self.chunkptr.len() * 8
            + self.chunk_width.len() * 4
    }

    /// Serial SpMV: `y = A x` (output in the original row ordering).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        self.spmv_chunks(0..self.nchunks(), x, y);
    }

    /// SpMV over a contiguous chunk range, scattering into `y` at the
    /// original row positions (disjoint across chunks, so parallel
    /// callers may partition by chunks).
    pub fn spmv_chunks(&self, chunks: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        self.spmv_chunks_scatter(chunks, x, &mut |row, value| y[row] = value);
    }

    /// SpMV over a contiguous chunk range, delivering each result as
    /// `scatter(original_row, value)`. Rows delivered by distinct
    /// chunks are disjoint (the permutation is a bijection), which
    /// lets parallel callers write through a shared raw pointer
    /// without materialising aliasing `&mut` slices.
    pub fn spmv_chunks_scatter(
        &self,
        chunks: std::ops::Range<usize>,
        x: &[f64],
        scatter: &mut dyn FnMut(usize, f64),
    ) {
        let c = self.chunk;
        let mut acc = vec![0.0f64; c];
        for ci in chunks {
            let base = self.chunkptr[ci];
            let width = self.chunk_width[ci] as usize;
            let lanes = c.min(self.nrows - ci * c);
            acc[..lanes].fill(0.0);
            for k in 0..width {
                let col_base = base + k * c;
                for (lane, a) in acc.iter_mut().enumerate().take(lanes) {
                    let col = self.colind[col_base + lane];
                    if col != SELL_PAD {
                        *a += self.values[col_base + lane] * x[col as usize];
                    }
                }
            }
            for (lane, &a) in acc.iter().enumerate().take(lanes) {
                scatter(self.perm[ci * c + lane] as usize, a);
            }
        }
    }

    /// Like [`SellCs::spmv_chunks_scatter`] with per-element bounds
    /// checks elided — the sliced-ELL fast path.
    ///
    /// # Safety
    /// * `self` must hold a structure that passed
    ///   [`crate::validate::ValidateFormat::validate_structure`]
    ///   (i.e. the caller holds a [`crate::Validated`] witness): slab
    ///   geometry is consistent, every stored column is `SELL_PAD` or
    ///   `< ncols`, and `perm` is a bijection on `0..nrows` (so rows
    ///   delivered by distinct chunks stay disjoint).
    /// * `chunks.end <= self.nchunks()`.
    /// * `x.len() == self.ncols()`.
    ///
    /// `scatter` receives original row indices `< nrows`, each at most
    /// once per call.
    pub unsafe fn spmv_chunks_scatter_unchecked(
        &self,
        chunks: std::ops::Range<usize>,
        x: &[f64],
        scatter: &mut dyn FnMut(usize, f64),
    ) {
        let c = self.chunk;
        let mut acc = vec![0.0f64; c];
        for ci in chunks {
            // SAFETY: the validated chunkptr/chunk_width have
            // nchunks + 1 / nchunks entries and the caller guarantees
            // chunks.end <= nchunks.
            let (base, width) = unsafe {
                (*self.chunkptr.get_unchecked(ci), *self.chunk_width.get_unchecked(ci) as usize)
            };
            let lanes = c.min(self.nrows - ci * c);
            acc[..lanes].fill(0.0);
            for k in 0..width {
                let col_base = base + k * c;
                for (lane, a) in acc.iter_mut().enumerate().take(lanes) {
                    // SAFETY: validation proved chunkptr[ci + 1] -
                    // chunkptr[ci] == width * chunk and colind/values have
                    // chunkptr[nchunks] entries, so col_base + lane is in
                    // bounds for both slabs.
                    let col = unsafe { *self.colind.get_unchecked(col_base + lane) };
                    if col != SELL_PAD {
                        // SAFETY: validation proved every non-pad column is
                        // < ncols, and the caller guarantees
                        // x.len() == ncols.
                        *a += unsafe {
                            *self.values.get_unchecked(col_base + lane)
                                * *x.get_unchecked(col as usize)
                        };
                    }
                }
            }
            for (lane, &a) in acc.iter().enumerate().take(lanes) {
                // SAFETY: perm has nrows entries (validated) and
                // ci * c + lane < nrows because lanes is clamped.
                scatter(unsafe { *self.perm.get_unchecked(ci * c + lane) } as usize, a);
            }
        }
    }

    /// Chunk pointer in *chunk* units for nnz-balanced partitioning:
    /// entry `i` is the number of stored slots before chunk `i`.
    pub fn chunk_slots_ptr(&self) -> &[usize] {
        &self.chunkptr
    }
}

impl crate::validate::ValidateFormat for SellCs {
    fn format_name(&self) -> &'static str {
        "sell-c-sigma"
    }

    fn validate_structure(&self) -> Result<()> {
        let corrupt = |detail: String| SparseError::Corrupt { format: "sell-c-sigma", detail };
        if self.chunk == 0 {
            return Err(corrupt("chunk size is zero".into()));
        }
        let nchunks = self.nrows.div_ceil(self.chunk);
        if self.chunk_width.len() != nchunks {
            return Err(corrupt(format!(
                "chunk_width length {} != nchunks = {nchunks}",
                self.chunk_width.len()
            )));
        }
        crate::validate::check_rowptr("sell-c-sigma", &self.chunkptr, nchunks, self.colind.len())?;
        for ci in 0..nchunks {
            let slots = self.chunkptr[ci + 1] - self.chunkptr[ci];
            let want = self.chunk_width[ci] as usize * self.chunk;
            if slots != want {
                return Err(corrupt(format!(
                    "chunk {ci} holds {slots} slots but width * chunk = {want}"
                )));
            }
        }
        if self.values.len() != self.colind.len() {
            return Err(corrupt(format!(
                "values length {} != colind length {}",
                self.values.len(),
                self.colind.len()
            )));
        }
        for (k, &col) in self.colind.iter().enumerate() {
            if col != SELL_PAD && col as usize >= self.ncols {
                return Err(corrupt(format!(
                    "column index {col} at slot {k} >= ncols = {}",
                    self.ncols
                )));
            }
        }
        if self.perm.len() != self.nrows {
            return Err(corrupt(format!(
                "perm length {} != nrows = {}",
                self.perm.len(),
                self.nrows
            )));
        }
        let mut seen = vec![false; self.nrows];
        for &p in &self.perm {
            match seen.get_mut(p as usize) {
                Some(s) if !*s => *s = true,
                Some(_) => {
                    return Err(corrupt(format!("perm maps to row {p} twice; not a bijection")))
                }
                None => return Err(corrupt(format!("perm entry {p} >= nrows = {}", self.nrows))),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_product(a: &Csr, chunk: usize, sigma: usize) -> SellCs {
        let s = SellCs::from_csr(a, chunk, sigma).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y1);
        s.spmv(&x, &mut y2);
        for (i, (u, v)) in y1.iter().zip(&y2).enumerate() {
            assert!((u - v).abs() < 1e-10, "C={chunk} σ={sigma} row {i}: {u} vs {v}");
        }
        s
    }

    #[test]
    fn rejects_bad_parameters() {
        let a = Csr::identity(8);
        assert!(SellCs::from_csr(&a, 0, 8).is_err());
        assert!(SellCs::from_csr(&a, 8, 4).is_err());
    }

    #[test]
    fn matches_csr_across_shapes() {
        let a = gen::powerlaw(500, 7, 1.9, 3).unwrap();
        for (c, s) in [(1, 1), (4, 4), (4, 64), (8, 128), (16, 500), (7, 21)] {
            check_product(&a, c, s);
        }
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        // Skewed row lengths: sorting within large windows groups
        // similar lengths together, shrinking chunk padding.
        let a = gen::powerlaw(4_000, 8, 1.7, 5).unwrap();
        let unsorted = SellCs::from_csr(&a, 8, 8).unwrap();
        let sorted = SellCs::from_csr(&a, 8, 1024).unwrap();
        assert!(
            sorted.padding_ratio() < unsorted.padding_ratio(),
            "{} vs {}",
            sorted.padding_ratio(),
            unsorted.padding_ratio()
        );
    }

    #[test]
    fn uniform_rows_have_no_padding() {
        let a = gen::random_uniform(256, 8, 1).unwrap();
        // every row has 8 or 9 nonzeros (incl. diagonal)
        let s = SellCs::from_csr(&a, 8, 64).unwrap();
        assert!(s.padding_ratio() < 0.15, "{}", s.padding_ratio());
    }

    #[test]
    fn ragged_tail_chunk() {
        let a = gen::banded(103, 3, 1.0, 7).unwrap(); // 103 % 8 != 0
        let s = check_product(&a, 8, 32);
        assert_eq!(s.nchunks(), 13);
        assert_eq!(s.nnz(), a.nnz());
    }

    #[test]
    fn chunk_range_partial_execution() {
        let a = gen::banded(64, 2, 1.0, 9).unwrap();
        let s = SellCs::from_csr(&a, 4, 16).unwrap();
        let x = vec![1.0; 64];
        let mut full = vec![0.0; 64];
        a.spmv(&x, &mut full);
        let mut y = vec![f64::NAN; 64];
        s.spmv_chunks(4..8, &x, &mut y); // sorted rows 16..32
        let mut written = 0;
        for i in 0..64 {
            if !y[i].is_nan() {
                assert!((y[i] - full[i]).abs() < 1e-12);
                written += 1;
            }
        }
        assert_eq!(written, 16);
    }

    #[test]
    fn footprint_accounts_padding_and_metadata() {
        let a = gen::powerlaw(300, 6, 2.0, 2).unwrap();
        let s = SellCs::from_csr(&a, 8, 64).unwrap();
        assert!(s.footprint_bytes() > a.values_bytes());
    }
}

#[cfg(test)]
mod corruption_proptests {
    use super::*;
    use crate::validate::{ValidateFormat, Validated};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every corruption of a well-formed SELL-C-σ buffer —
        /// including a broken permutation, which the parallel scatter
        /// relies on for write disjointness — is rejected by the
        /// witness constructor with an error, never a panic.
        #[test]
        fn corrupted_sellcs_is_rejected(n in 4usize..40, seed in 0u64..1000, kind in 0usize..4) {
            let a = crate::gen::banded(n, 2, 1.0, seed).expect("generator");
            let mut s = SellCs::from_csr(&a, 4, 16).expect("convertible");
            match kind {
                0 => *s.chunkptr.last_mut().unwrap() += 1,
                1 => s.colind[0] = s.ncols as u32,
                2 => s.perm[0] = s.perm[1],
                _ => s.chunk_width[0] += 1,
            }
            let err = s.validate_structure().expect_err("corruption must be caught");
            prop_assert!(err.to_string().contains("sell"), "got: {err}");
            prop_assert!(Validated::new(&s).is_err());
        }
    }
}
