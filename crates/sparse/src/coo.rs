//! Coordinate (triplet) sparse matrix format.
//!
//! COO is the natural assembly format: entries arrive in arbitrary
//! order as `(row, col, value)` triplets and are later converted to
//! [`Csr`](crate::Csr) for computation. Duplicate coordinates are
//! summed during conversion, matching the MatrixMarket convention.

use crate::error::SparseError;
use crate::index_u32;
use crate::Result;

/// A sparse matrix in coordinate (triplet) format.
///
/// Invariants maintained by the constructors:
/// * `rows`, `cols` and `values` always have equal lengths;
/// * every `(rows[k], cols[k])` lies inside `nrows x ncols`.
///
/// Entries may appear in any order and duplicates are allowed; they
/// are summed on conversion to CSR.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    values: Vec<f64>,
}

impl Coo {
    /// Creates an empty COO matrix of the given shape.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] if either dimension
    /// exceeds `u32::MAX` (indices are stored as `u32`).
    pub fn new(nrows: usize, ncols: usize) -> Result<Self> {
        Self::check_shape(nrows, ncols)?;
        Ok(Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), values: Vec::new() })
    }

    /// Creates an empty COO matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Result<Self> {
        Self::check_shape(nrows, ncols)?;
        Ok(Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        })
    }

    /// Builds a COO matrix from pre-existing triplet arrays.
    ///
    /// # Errors
    /// * [`SparseError::LengthMismatch`] if array lengths differ;
    /// * [`SparseError::IndexOutOfBounds`] on any out-of-range entry.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        Self::check_shape(nrows, ncols)?;
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                detail: format!(
                    "rows={}, cols={}, values={}",
                    rows.len(),
                    cols.len(),
                    values.len()
                ),
            });
        }
        for k in 0..rows.len() {
            let (r, c) = (rows[k] as usize, cols[k] as usize);
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, nrows, ncols });
            }
        }
        Ok(Coo { nrows, ncols, rows, cols, values })
    }

    fn check_shape(nrows: usize, ncols: usize) -> Result<()> {
        if nrows > u32::MAX as usize || ncols > u32::MAX as usize {
            return Err(SparseError::DimensionMismatch {
                detail: format!("shape {nrows}x{ncols} exceeds u32 index space"),
            });
        }
        Ok(())
    }

    /// Appends one entry.
    ///
    /// # Errors
    /// [`SparseError::IndexOutOfBounds`] if `(row, col)` is outside the
    /// matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(index_u32(row));
        self.cols.push(index_u32(col));
        self.values.push(value);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including duplicates and explicit
    /// zeros).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices of the stored entries.
    #[inline]
    pub fn row_indices(&self) -> &[u32] {
        &self.rows
    }

    /// Column indices of the stored entries.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.cols
    }

    /// Values of the stored entries.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(row, col, value)` triplets in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Multiplies `y = A * x` directly on the triplets (reference
    /// implementation used for cross-checking the optimized kernels).
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        y.fill(0.0);
        for k in 0..self.values.len() {
            y[self.rows[k] as usize] += self.values[k] * x[self.cols[k] as usize];
        }
    }

    /// Mirrors every strictly-lower (or strictly-upper) entry to make
    /// the matrix structurally symmetric. Used when expanding
    /// MatrixMarket `symmetric` files. Diagonal entries are kept once.
    pub fn symmetrize(&mut self) {
        let n = self.values.len();
        for k in 0..n {
            if self.rows[k] != self.cols[k] {
                let (r, c, v) = (self.cols[k], self.rows[k], self.values[k]);
                self.rows.push(r);
                self.cols.push(c);
                self.values.push(v);
            }
        }
    }

    /// Consumes the matrix and returns its triplet arrays
    /// `(nrows, ncols, rows, cols, values)`.
    pub fn into_triplets(self) -> (usize, usize, Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.nrows, self.ncols, self.rows, self.cols, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        let mut m = Coo::new(3, 4).unwrap();
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 2, 2.0).unwrap();
        m.push(2, 3, 3.0).unwrap();
        m.push(2, 0, 4.0).unwrap();
        m
    }

    #[test]
    fn push_and_query() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 4);
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets[1], (1, 2, 2.0));
    }

    #[test]
    fn push_out_of_bounds_rejected() {
        let mut m = Coo::new(2, 2).unwrap();
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn from_triplets_validates() {
        assert!(Coo::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(Coo::from_triplets(2, 2, vec![5], vec![0], vec![1.0]).is_err());
        assert!(Coo::from_triplets(2, 2, vec![1], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn spmv_reference() {
        let m = sample();
        let x = [1.0, 1.0, 1.0, 2.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [1.0, 2.0, 10.0]);
    }

    #[test]
    fn spmv_sums_duplicates() {
        let mut m = Coo::new(1, 1).unwrap();
        m.push(0, 0, 1.5).unwrap();
        m.push(0, 0, 2.5).unwrap();
        let mut y = [0.0];
        m.spmv(&[2.0], &mut y);
        assert_eq!(y, [8.0]);
    }

    #[test]
    fn symmetrize_mirrors_off_diagonal() {
        let mut m = Coo::new(3, 3).unwrap();
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 0, 2.0).unwrap();
        m.push(2, 1, 3.0).unwrap();
        m.symmetrize();
        assert_eq!(m.nnz(), 5); // diagonal kept once, two mirrored
        let has = |r, c, v| m.iter().any(|t| t == (r, c, v));
        assert!(has(0, 1, 2.0));
        assert!(has(1, 2, 3.0));
    }

    #[test]
    fn empty_matrix_spmv_zeroes_output() {
        let m = Coo::new(2, 2).unwrap();
        let mut y = [9.0, 9.0];
        m.spmv(&[1.0, 1.0], &mut y);
        assert_eq!(y, [0.0, 0.0]);
    }
}
