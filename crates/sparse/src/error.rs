//! Error type shared by all sparse-matrix operations.

use std::fmt;

/// Errors produced while constructing, converting or parsing sparse
/// matrices.
#[derive(Debug)]
pub enum SparseError {
    /// A coordinate lies outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// A CSR row-pointer array is malformed (wrong length, not
    /// monotone, or inconsistent with `nnz`).
    InvalidRowPtr(String),
    /// Structural arrays disagree in length.
    LengthMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The matrix dimensions are invalid for the requested operation.
    DimensionMismatch {
        /// Description of the expected vs found shape.
        detail: String,
    },
    /// A MatrixMarket stream could not be parsed.
    Parse {
        /// 1-based line number where parsing failed (0 = header).
        line: usize,
        /// Description of the failure.
        detail: String,
    },
    /// Underlying I/O failure while reading or writing a matrix.
    Io(std::io::Error),
    /// A generator was asked for an impossible structure.
    InvalidGenerator(String),
    /// A format's structural invariants are violated — reported by the
    /// [`crate::validate`] witness checks and by compression builders
    /// that refuse to narrow out-of-range values.
    Corrupt {
        /// Name of the format whose invariants failed.
        format: &'static str,
        /// The first violated invariant, human-readable.
        detail: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) outside {nrows}x{ncols} matrix")
            }
            SparseError::InvalidRowPtr(detail) => {
                write!(f, "invalid CSR row pointer array: {detail}")
            }
            SparseError::LengthMismatch { detail } => {
                write!(f, "array length mismatch: {detail}")
            }
            SparseError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            SparseError::Parse { line, detail } => {
                write!(f, "MatrixMarket parse error at line {line}: {detail}")
            }
            SparseError::Io(e) => write!(f, "I/O error: {e}"),
            SparseError::InvalidGenerator(detail) => {
                write!(f, "invalid generator parameters: {detail}")
            }
            SparseError::Corrupt { format, detail } => {
                write!(f, "corrupt {format} structure: {detail}")
            }
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, nrows: 4, ncols: 4 };
        let s = e.to_string();
        assert!(s.contains("(5, 7)"));
        assert!(s.contains("4x4"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn parse_error_reports_line() {
        let e = SparseError::Parse { line: 12, detail: "bad token".into() };
        assert!(e.to_string().contains("line 12"));
    }
}
