//! # spmv-sparse
//!
//! Sparse matrix substrate for the `spmv-tune` workspace: storage
//! formats, synthetic matrix generators, MatrixMarket I/O and the
//! structural feature extraction of Elafrou et al. (IPDPS 2017),
//! Table 2.
//!
//! ## Formats
//!
//! * [`Coo`] — coordinate (triplet) format, the assembly format.
//! * [`Csr`] — Compressed Sparse Row, the baseline format of the paper.
//! * [`DeltaCsr`] — CSR with delta-compressed column indices (8- or
//!   16-bit deltas, never both), the paper's `MB`-class optimization.
//! * [`DecomposedCsr`] — CSR split into a short-row part and a long-row
//!   part, the paper's `IMB`-class decomposition optimization.
//! * [`EllHybrid`] — ELLPACK + COO hybrid used by the
//!   Inspector-Executor reference baseline.
//!
//! ## Generators
//!
//! [`gen`] provides structural archetypes (banded FEM, stencils,
//! power-law graphs, circuit matrices with a few dense rows, …) and
//! [`gen::suite`] names presets after the matrices of the paper's
//! representative suite (`consph`, `rajat30`, `web_google`, …).
//!
//! ## Features
//!
//! [`features::FeatureVector`] implements the paper's Table 2 feature
//! set with the documented extraction complexities.

pub mod bcsr;
pub mod coo;
pub mod csr;
pub mod decomp;
pub mod delta;
pub mod ellhyb;
pub mod error;
pub mod features;
pub mod gen;
pub mod mm;
pub mod sellcs;
pub mod spy;
pub mod stats;
pub mod validate;

pub use bcsr::Bcsr;
pub use coo::Coo;
pub use csr::Csr;
pub use decomp::DecomposedCsr;
pub use delta::{DeltaCsr, DeltaWidth};
pub use ellhyb::EllHybrid;
pub use error::SparseError;
pub use features::FeatureVector;
pub use sellcs::SellCs;
pub use stats::RowStats;
pub use validate::{MaybeValidated, ValidateFormat, Validated};

/// Result alias for fallible sparse-matrix operations.
pub type Result<T> = std::result::Result<T, SparseError>;

/// Converts a row/column index (or count) to the `u32` the storage
/// formats use, panicking with a descriptive message instead of
/// silently truncating. Every format in this crate stores indices as
/// `u32`; a matrix dimension past that range cannot be represented,
/// and a wrapped index would be data corruption, not an error.
#[inline]
pub fn index_u32(i: usize) -> u32 {
    u32::try_from(i).unwrap_or_else(|_| panic!("index {i} exceeds the u32 index space"))
}
