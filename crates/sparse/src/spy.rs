//! ASCII "spy plot" rendering of sparsity patterns.
//!
//! A quick terminal visualisation of a matrix's structure — the
//! first thing one looks at when wondering *why* a matrix lands in a
//! particular bottleneck class.

use crate::csr::Csr;

/// Density shading ramp from empty to full.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders the sparsity pattern of `a` into a `width x height`
/// character grid. Each cell shows the fill density of the
/// corresponding sub-block via a 10-step shade ramp.
///
/// # Panics
/// Panics if `width` or `height` is zero.
pub fn spy(a: &Csr, width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "spy grid must be non-empty");
    let mut counts = vec![0u64; width * height];
    let rows = a.nrows().max(1) as f64;
    let cols = a.ncols().max(1) as f64;
    for (i, cs, _) in a.rows() {
        let gy = ((i as f64 / rows) * height as f64) as usize;
        let gy = gy.min(height - 1);
        for &c in cs {
            let gx = ((f64::from(c) / cols) * width as f64) as usize;
            let gx = gx.min(width - 1);
            counts[gy * width + gx] += 1;
        }
    }
    // Cell capacity for normalisation.
    let cell_rows = (a.nrows() as f64 / height as f64).max(1.0);
    let cell_cols = (a.ncols() as f64 / width as f64).max(1.0);
    let capacity = cell_rows * cell_cols;
    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    for gy in 0..height {
        out.push('|');
        for gx in 0..width {
            let density = counts[gy * width + gx] as f64 / capacity;
            let level = ((density * (RAMP.len() - 1) as f64).ceil() as usize).min(RAMP.len() - 1);
            out.push(RAMP[level] as char);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn diagonal_matrix_shows_a_diagonal() {
        let a = Csr::identity(64);
        let s = spy(&a, 8, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10); // 8 rows + 2 borders
                                     // Diagonal cells are non-blank; off-diagonal corners blank.
        for k in 0..8 {
            let row = lines[k + 1].as_bytes();
            assert_ne!(row[k + 1], b' ', "diagonal cell ({k},{k}) empty");
        }
        assert_eq!(lines[1].as_bytes()[8], b' ', "top-right should be empty");
    }

    #[test]
    fn dense_row_lights_up_a_full_stripe() {
        let a = gen::circuit(1_000, 1, 1.0, 3, 1).unwrap();
        let s = spy(&a, 20, 10);
        // The dense row (placed mid-matrix) produces a row of
        // non-space glyphs.
        let stripe = s.lines().find(|l| {
            l.starts_with('|') && l.chars().filter(|&c| c != ' ' && c != '|').count() >= 19
        });
        assert!(stripe.is_some(), "{s}");
    }

    #[test]
    fn empty_matrix_renders_blank() {
        let a = Csr::from_raw(10, 10, vec![0; 11], vec![], vec![]).unwrap();
        let s = spy(&a, 5, 5);
        assert!(s.lines().skip(1).take(5).all(|l| l == "|     |"), "{s}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_grid_panics() {
        spy(&Csr::identity(4), 0, 5);
    }
}
