//! Structural feature extraction (paper Table 2).
//!
//! Features characterise a sparse matrix cheaply enough that the
//! feature-guided classifier's runtime stays negligible compared to a
//! single SpMV. Two families exist:
//!
//! * `O(N)` features — derived from the row pointer and first/last
//!   column of each row (`nnz_*`, `bw_*`, `scatter_*`, `density`,
//!   `size`);
//! * `O(NNZ)` features — require a sweep of all column indices
//!   (`clustering_avg`, `misses_avg`).
//!
//! The paper's Table 3 classifiers use either an `O(N)` subset or the
//! full `O(NNZ)` set; [`FeatureSet`] mirrors that split.

use crate::csr::Csr;
use crate::stats::RowStats;

/// Which subset of Table 2 features to extract/use, matching the two
/// classifier rows of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// `nnz_{min,max,sd}`, `bw_avg`, `scatter_{avg,sd}` — extraction
    /// cost `O(N)`.
    RowOnly,
    /// `size`, `bw_{avg,sd}`, `nnz_{min,max,avg,sd}`, `misses_avg`,
    /// `scatter_sd` — extraction cost `O(NNZ)`.
    Full,
}

impl FeatureSet {
    /// Names of the features selected by this set, in the order they
    /// appear in [`FeatureVector::select`].
    pub fn names(self) -> &'static [&'static str] {
        match self {
            FeatureSet::RowOnly => {
                &["nnz_min", "nnz_max", "nnz_sd", "bw_avg", "scatter_avg", "scatter_sd"]
            }
            FeatureSet::Full => &[
                "size",
                "bw_avg",
                "bw_sd",
                "nnz_min",
                "nnz_max",
                "nnz_avg",
                "nnz_sd",
                "misses_avg",
                "scatter_sd",
            ],
        }
    }
}

/// The full Table 2 feature vector of a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// 1.0 when the SpMV working set fits in the last-level cache of
    /// the target platform, 0.0 otherwise.
    pub size_fits_llc: f64,
    /// `NNZ / N^2`.
    pub density: f64,
    /// Min / max / mean / sd of nonzeros per row.
    pub nnz_min: f64,
    /// See [`FeatureVector::nnz_min`].
    pub nnz_max: f64,
    /// See [`FeatureVector::nnz_min`].
    pub nnz_avg: f64,
    /// See [`FeatureVector::nnz_min`].
    pub nnz_sd: f64,
    /// Min / max / mean / sd of per-row column span.
    pub bw_min: f64,
    /// See [`FeatureVector::bw_min`].
    pub bw_max: f64,
    /// See [`FeatureVector::bw_min`].
    pub bw_avg: f64,
    /// See [`FeatureVector::bw_min`].
    pub bw_sd: f64,
    /// Mean / sd of `scatter_i = nnz_i / bw_i` (the paper also calls
    /// this feature *dispersion*).
    pub scatter_avg: f64,
    /// See [`FeatureVector::scatter_avg`].
    pub scatter_sd: f64,
    /// Mean of `clustering_i = ngroups_i / nnz_i`.
    pub clustering_avg: f64,
    /// Mean of the naive per-row cache-miss estimate.
    pub misses_avg: f64,
    /// Number of rows (kept for context, not a Table 2 feature).
    pub nrows: f64,
    /// Number of nonzeros (kept for context, not a Table 2 feature).
    pub nnz: f64,
}

impl FeatureVector {
    /// Extracts all features from `a`.
    ///
    /// * `llc_bytes` — last-level cache capacity of the target
    ///   platform, for the binary `size` feature. The working set is
    ///   `S_CSR + S_x + S_y`.
    /// * `line_elems` — elements per cache line, for `misses_avg`.
    pub fn extract(a: &Csr, llc_bytes: usize, line_elems: u32) -> FeatureVector {
        let stats = RowStats::compute(a, line_elems);
        Self::from_stats(a, &stats, llc_bytes)
    }

    /// Builds the feature vector from precomputed [`RowStats`]
    /// (lets callers share one `O(NNZ)` sweep among consumers).
    pub fn from_stats(a: &Csr, stats: &RowStats, llc_bytes: usize) -> FeatureVector {
        let nnz_s = stats.nnz_summary();
        let bw_s = stats.bw_summary();
        let sc_s = stats.scatter_summary();
        let ws = working_set_bytes(a);
        let n = a.nrows().max(1) as f64;
        FeatureVector {
            size_fits_llc: if ws <= llc_bytes { 1.0 } else { 0.0 },
            density: a.nnz() as f64 / (n * a.ncols().max(1) as f64),
            nnz_min: nnz_s.min,
            nnz_max: nnz_s.max,
            nnz_avg: nnz_s.avg,
            nnz_sd: nnz_s.sd,
            bw_min: bw_s.min,
            bw_max: bw_s.max,
            bw_avg: bw_s.avg,
            bw_sd: bw_s.sd,
            scatter_avg: sc_s.avg,
            scatter_sd: sc_s.sd,
            clustering_avg: stats.clustering_avg(),
            misses_avg: stats.misses_avg(),
            nrows: a.nrows() as f64,
            nnz: a.nnz() as f64,
        }
    }

    /// Projects the features selected by `set` into a flat vector, in
    /// the order of [`FeatureSet::names`].
    pub fn select(&self, set: FeatureSet) -> Vec<f64> {
        match set {
            FeatureSet::RowOnly => vec![
                self.nnz_min,
                self.nnz_max,
                self.nnz_sd,
                self.bw_avg,
                self.scatter_avg,
                self.scatter_sd,
            ],
            FeatureSet::Full => vec![
                self.size_fits_llc,
                self.bw_avg,
                self.bw_sd,
                self.nnz_min,
                self.nnz_max,
                self.nnz_avg,
                self.nnz_sd,
                self.misses_avg,
                self.scatter_sd,
            ],
        }
    }
}

/// SpMV working-set size in bytes: CSR footprint plus the `x` and `y`
/// vectors. This is what the paper compares against the LLC capacity
/// for the binary `size` feature.
pub fn working_set_bytes(a: &Csr) -> usize {
    a.footprint_bytes() + (a.ncols() + a.nrows()) * std::mem::size_of::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn tridiagonal(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn tridiagonal_features() {
        let a = tridiagonal(100);
        let f = FeatureVector::extract(&a, 1 << 20, 8);
        assert_eq!(f.nnz_min, 2.0);
        assert_eq!(f.nnz_max, 3.0);
        assert!((f.nnz_avg - 2.98).abs() < 1e-12);
        assert_eq!(f.bw_max, 2.0);
        assert_eq!(f.size_fits_llc, 1.0);
        assert_eq!(f.misses_avg, 0.0);
        assert!(f.density > 0.0 && f.density < 0.03);
    }

    #[test]
    fn size_feature_tracks_llc() {
        let a = tridiagonal(1000);
        let small = FeatureVector::extract(&a, 64, 8);
        let big = FeatureVector::extract(&a, 1 << 30, 8);
        assert_eq!(small.size_fits_llc, 0.0);
        assert_eq!(big.size_fits_llc, 1.0);
    }

    #[test]
    fn select_orders_match_names() {
        let a = tridiagonal(10);
        let f = FeatureVector::extract(&a, 1 << 20, 8);
        for set in [FeatureSet::RowOnly, FeatureSet::Full] {
            assert_eq!(f.select(set).len(), set.names().len());
        }
        let v = f.select(FeatureSet::Full);
        assert_eq!(v[0], f.size_fits_llc);
        assert_eq!(v[7], f.misses_avg);
    }

    #[test]
    fn working_set_accounts_vectors() {
        let a = tridiagonal(10);
        assert_eq!(working_set_bytes(&a), a.footprint_bytes() + 20 * 8);
    }

    #[test]
    fn scattered_matrix_has_high_misses_avg() {
        let mut coo = Coo::new(4, 4096).unwrap();
        for i in 0..4 {
            for k in 0..8 {
                coo.push(i, k * 512, 1.0).unwrap();
            }
        }
        let f = FeatureVector::extract(&Csr::from_coo(&coo), 1 << 20, 8);
        assert_eq!(f.misses_avg, 7.0);
        assert!(f.scatter_avg < 0.01);
    }
}
