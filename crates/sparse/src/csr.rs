//! Compressed Sparse Row format — the baseline format of the paper.
//!
//! The `y = A·x` kernel over CSR (paper Fig. 2) is the object of all
//! optimizations in this workspace: every optimized kernel, bound
//! micro-benchmark and classifier operates on (or is derived from)
//! this representation.

use crate::coo::Coo;
use crate::error::SparseError;
use crate::index_u32;
use crate::Result;

/// A sparse matrix in Compressed Sparse Row format with `f64` values
/// and `u32` column indices.
///
/// Invariants (checked at construction):
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`,
///   `rowptr[nrows] == nnz`, monotone non-decreasing;
/// * `colind.len() == values.len() == nnz`;
/// * every column index is `< ncols`;
/// * within each row, column indices are strictly increasing (sorted,
///   no duplicates).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays, validating all invariants.
    ///
    /// # Errors
    /// * [`SparseError::InvalidRowPtr`] for malformed `rowptr`;
    /// * [`SparseError::LengthMismatch`] if `colind`/`values` disagree;
    /// * [`SparseError::IndexOutOfBounds`] for a column `>= ncols`;
    /// * [`SparseError::InvalidRowPtr`] if a row's columns are not
    ///   strictly increasing.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::InvalidRowPtr(format!(
                "rowptr length {} != nrows + 1 = {}",
                rowptr.len(),
                nrows + 1
            )));
        }
        if rowptr[0] != 0 {
            return Err(SparseError::InvalidRowPtr(format!("rowptr[0] = {}", rowptr[0])));
        }
        if colind.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                detail: format!("colind={}, values={}", colind.len(), values.len()),
            });
        }
        if rowptr[nrows] != colind.len() {
            return Err(SparseError::InvalidRowPtr(format!(
                "rowptr[nrows] = {} != nnz = {}",
                rowptr[nrows],
                colind.len()
            )));
        }
        for i in 0..nrows {
            if rowptr[i] > rowptr[i + 1] {
                return Err(SparseError::InvalidRowPtr(format!("rowptr not monotone at row {i}")));
            }
            let row = &colind[rowptr[i]..rowptr[i + 1]];
            for (k, &c) in row.iter().enumerate() {
                if c as usize >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: i,
                        col: c as usize,
                        nrows,
                        ncols,
                    });
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(SparseError::InvalidRowPtr(format!(
                        "columns of row {i} not strictly increasing"
                    )));
                }
            }
        }
        Ok(Csr { nrows, ncols, rowptr, colind, values })
    }

    /// Builds a CSR matrix from raw arrays **without** validating the
    /// per-row column ordering (lengths and bounds are still checked
    /// in debug builds).
    ///
    /// Exists for benchmark kernels that deliberately construct
    /// degenerate structures — e.g. the paper's `P_ML` micro-benchmark
    /// sets every column index of a row to the row index, which is not
    /// a legal CSR pattern but is exactly what must be executed.
    /// `spmv` remains memory-safe for any in-bounds indices.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(rowptr.len(), nrows + 1);
        debug_assert_eq!(colind.len(), values.len());
        debug_assert!(colind.iter().all(|&c| (c as usize) < ncols.max(1)));
        Csr { nrows, ncols, rowptr, colind, values }
    }

    /// Converts a COO matrix, sorting entries row-major and summing
    /// duplicates. Runs in `O(NNZ + N)` (counting sort on rows, then
    /// per-row sort by column).
    pub fn from_coo(coo: &Coo) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let nnz_in = coo.nnz();

        // Counting sort by row.
        let mut counts = vec![0usize; nrows + 1];
        for &r in coo.row_indices() {
            counts[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<u32> = vec![0; nnz_in];
        {
            let mut next = counts.clone();
            let rows = coo.row_indices();
            for (k, &r) in rows.iter().enumerate() {
                order[next[r as usize]] = index_u32(k);
                next[r as usize] += 1;
            }
        }

        let cols_in = coo.col_indices();
        let vals_in = coo.values();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colind: Vec<u32> = Vec::with_capacity(nnz_in);
        let mut values: Vec<f64> = Vec::with_capacity(nnz_in);
        let mut rowbuf: Vec<(u32, f64)> = Vec::new();
        for i in 0..nrows {
            rowbuf.clear();
            for &k in &order[counts[i]..counts[i + 1]] {
                rowbuf.push((cols_in[k as usize], vals_in[k as usize]));
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            // Sum duplicates.
            let mut j = 0;
            while j < rowbuf.len() {
                let c = rowbuf[j].0;
                let mut v = rowbuf[j].1;
                j += 1;
                while j < rowbuf.len() && rowbuf[j].0 == c {
                    v += rowbuf[j].1;
                    j += 1;
                }
                colind.push(c);
                values.push(v);
            }
            rowptr.push(colind.len());
        }
        Csr { nrows, ncols, rowptr, colind, values }
    }

    /// Builds an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colind: (0..index_u32(n)).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzero elements.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    #[inline]
    pub fn colind(&self) -> &[u32] {
        &self.colind
    }

    /// Nonzero value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the nonzero values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
        (&self.colind[s..e], &self.values[s..e])
    }

    /// Iterates over rows as `(row_index, cols, vals)`.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &[u32], &[f64])> + '_ {
        (0..self.nrows).map(move |i| {
            let (c, v) = self.row(i);
            (i, c, v)
        })
    }

    /// Serial reference SpMV: `y = A * x` (paper Fig. 2).
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for j in self.rowptr[i]..self.rowptr[i + 1] {
                sum += self.values[j] * x[self.colind[j] as usize];
            }
            *yi = sum;
        }
    }

    /// Transposes the matrix in `O(NNZ + N)`.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.colind {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut rowptr_t = counts.clone();
        let nnz = self.nnz();
        let mut colind_t = vec![0u32; nnz];
        let mut values_t = vec![0.0f64; nnz];
        let mut next = counts;
        for i in 0..self.nrows {
            for j in self.rowptr[i]..self.rowptr[i + 1] {
                let c = self.colind[j] as usize;
                let dst = next[c];
                next[c] += 1;
                colind_t[dst] = index_u32(i);
                values_t[dst] = self.values[j];
            }
        }
        rowptr_t.truncate(self.ncols + 1);
        // counts was cloned before mutation; recompute final pointer.
        rowptr_t[self.ncols] = nnz;
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr: rowptr_t,
            colind: colind_t,
            values: values_t,
        }
    }

    /// Converts back to COO (row-major order).
    pub fn to_coo(&self) -> Coo {
        let mut rows = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            rows.extend(std::iter::repeat_n(index_u32(i), self.row_nnz(i)));
        }
        Coo::from_triplets(self.nrows, self.ncols, rows, self.colind.clone(), self.values.clone())
            .expect("CSR invariants imply valid COO")
    }

    /// Extracts the main diagonal (missing entries read as zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (i, item) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            if let Ok(k) = cols.binary_search(&index_u32(i)) {
                *item = vals[k];
            }
        }
        d
    }

    /// Value at `(row, col)`, or 0.0 when not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&index_u32(col)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Whether the sparsity pattern and values are symmetric (within
    /// `tol` relative tolerance). `O(NNZ log nnz_row)`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (k, &c) in cols.iter().enumerate() {
                let v = vals[k];
                let vt = self.get(c as usize, i);
                let scale = v.abs().max(vt.abs()).max(1.0);
                if (v - vt).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// Memory footprint in bytes of the CSR representation
    /// (`rowptr` as 8-byte + `colind` as 4-byte + `values` as 8-byte),
    /// the `S_format` quantity of the paper's bound analysis.
    pub fn footprint_bytes(&self) -> usize {
        (self.nrows + 1) * std::mem::size_of::<usize>()
            + self.nnz() * std::mem::size_of::<u32>()
            + self.nnz() * std::mem::size_of::<f64>()
    }

    /// Footprint in bytes of the values array alone (`S_values`), the
    /// index-free lower bound used for `P_peak`.
    pub fn values_bytes(&self) -> usize {
        self.nnz() * std::mem::size_of::<f64>()
    }

    /// Splits `0..nrows` into `nparts` contiguous row ranges with
    /// approximately equal numbers of nonzeros — the paper's baseline
    /// "static one-dimensional row partitioning scheme, where each
    /// partition has approximately equal number of nonzero elements".
    pub fn nnz_balanced_partition(&self, nparts: usize) -> Vec<std::ops::Range<usize>> {
        partition_rows_by_nnz(&self.rowptr, nparts)
    }

    /// Consumes the matrix, returning `(nrows, ncols, rowptr, colind,
    /// values)`.
    pub fn into_raw(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<f64>) {
        (self.nrows, self.ncols, self.rowptr, self.colind, self.values)
    }
}

impl crate::validate::ValidateFormat for Csr {
    fn format_name(&self) -> &'static str {
        "csr"
    }

    /// Safety-relevant invariants only: row-pointer shape and column
    /// bounds. Per-row column *ordering* is a format invariant but no
    /// fast path relies on it (and [`Csr::from_raw_unchecked`] callers
    /// like the `P_ML` micro-benchmark deliberately violate it), so it
    /// is not checked here.
    fn validate_structure(&self) -> Result<()> {
        crate::validate::check_rowptr("csr", &self.rowptr, self.nrows, self.colind.len())?;
        if self.colind.len() != self.values.len() {
            return Err(SparseError::Corrupt {
                format: "csr",
                detail: format!(
                    "colind length {} != values length {}",
                    self.colind.len(),
                    self.values.len()
                ),
            });
        }
        for (k, &c) in self.colind.iter().enumerate() {
            if c as usize >= self.ncols {
                return Err(SparseError::Corrupt {
                    format: "csr",
                    detail: format!("column index {c} at position {k} >= ncols = {}", self.ncols),
                });
            }
        }
        Ok(())
    }
}

/// Splits rows into `nparts` contiguous ranges of roughly equal nnz.
///
/// Each boundary is chosen so a partition ends as soon as it has
/// reached `ceil(nnz / nparts)` nonzeros; trailing partitions may be
/// empty for extremely skewed matrices.
pub fn partition_rows_by_nnz(rowptr: &[usize], nparts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(nparts > 0, "nparts must be positive");
    let nrows = rowptr.len() - 1;
    let nnz = rowptr[nrows];
    let target = nnz.div_ceil(nparts.max(1)).max(1);
    let mut ranges = Vec::with_capacity(nparts);
    let mut start = 0usize;
    for p in 0..nparts {
        if start >= nrows {
            ranges.push(start..start);
            continue;
        }
        if p == nparts - 1 {
            ranges.push(start..nrows);
            start = nrows;
            continue;
        }
        // Find the smallest end such that nnz(start..end) >= target.
        let want = rowptr[start] + target;
        let mut end = match rowptr[start + 1..=nrows].binary_search(&want) {
            Ok(k) => start + 1 + k,
            Err(k) => start + 1 + k,
        };
        end = end.min(nrows).max(start + 1);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 3 0]
        // [4 5 6]
        Csr::from_raw(
            3,
            3,
            vec![0, 2, 3, 6],
            vec![0, 2, 1, 0, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn from_raw_validates_rowptr() {
        assert!(Csr::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // An empty second row is perfectly valid.
        assert!(Csr::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
    }

    #[test]
    fn from_raw_rejects_bad_columns() {
        // column out of range
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 2], vec![1.0, 1.0]).is_err());
        // duplicate column in a row
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // unsorted column in a row
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn from_coo_sorts_and_sums() {
        let mut coo = Coo::new(2, 3).unwrap();
        coo.push(1, 2, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.push(0, 1, 4.0).unwrap(); // duplicate
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row(0), (&[1u32][..], &[6.0][..]));
        assert_eq!(csr.row(1), (&[0u32, 2][..], &[3.0, 1.0][..]));
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [7.0, 6.0, 32.0]);
    }

    #[test]
    fn spmv_matches_coo_reference() {
        let m = sample();
        let coo = m.to_coo();
        let x = [0.5, -1.0, 2.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        m.spmv(&x, &mut y1);
        coo.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(0, 2), 4.0);
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn identity_and_diagonal() {
        let id = Csr::identity(4);
        assert_eq!(id.nnz(), 4);
        assert_eq!(id.diagonal(), vec![1.0; 4]);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        id.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn symmetry_detection() {
        let id = Csr::identity(3);
        assert!(id.is_symmetric(1e-12));
        let m = sample();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn footprints() {
        let m = sample();
        assert_eq!(m.values_bytes(), 6 * 8);
        assert_eq!(m.footprint_bytes(), 4 * 8 + 6 * 4 + 6 * 8);
    }

    #[test]
    fn partition_balances_nnz() {
        // Rows with nnz: 1, 1, 8, 1, 1 -> 2 parts should split after row 2.
        let rowptr = vec![0, 1, 2, 10, 11, 12];
        let parts = partition_rows_by_nnz(&rowptr, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], 0..3);
        assert_eq!(parts[1], 3..5);
    }

    #[test]
    fn partition_covers_all_rows_disjointly() {
        let m = sample();
        for nparts in 1..6 {
            let parts = m.nnz_balanced_partition(nparts);
            assert_eq!(parts.len(), nparts);
            let mut next = 0;
            for r in &parts {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, m.nrows());
        }
    }

    #[test]
    fn partition_more_parts_than_rows() {
        let rowptr = vec![0, 3, 5];
        let parts = partition_rows_by_nnz(&rowptr, 4);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(parts.last().unwrap().end, 2);
    }

    #[test]
    fn get_missing_is_zero() {
        let m = sample();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 3.0);
    }
}

#[cfg(test)]
mod corruption_proptests {
    use crate::validate::{ValidateFormat, Validated};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every corruption of a well-formed CSR buffer is rejected by
        /// the witness constructor with an error — never a panic.
        #[test]
        fn corrupted_csr_is_rejected(n in 2usize..40, seed in 0u64..1000, kind in 0usize..4) {
            let mut a = crate::gen::banded(n, 2, 1.0, seed).expect("generator");
            match kind {
                0 => *a.rowptr.last_mut().unwrap() += 1,
                1 => a.colind[0] = a.ncols as u32,
                2 => { a.values.pop(); }
                _ => a.rowptr[1] = a.values.len() + 1,
            }
            let err = a.validate_structure().expect_err("corruption must be caught");
            prop_assert!(err.to_string().contains("csr"), "got: {err}");
            prop_assert!(Validated::new(&a).is_err());
        }

        /// Untouched generator output always passes validation.
        #[test]
        fn well_formed_csr_validates(n in 1usize..40, seed in 0u64..1000) {
            let a = crate::gen::banded(n, 2, 0.8, seed).expect("generator");
            prop_assert!(a.validate_structure().is_ok());
        }
    }
}
