//! Validated-format witnesses for the unsafe SpMV fast paths.
//!
//! The optimized kernels in `spmv-kernels` only beat plain CSR because
//! their inner loops skip per-element bounds checks. Skipping a check
//! is sound only if the *structure* guarantees it can never fail, and
//! that guarantee must come from somewhere: this module provides it as
//! a one-time `O(NNZ)` structural verification wrapped in a type-level
//! witness.
//!
//! * [`ValidateFormat`] — per-format structural verification: row
//!   pointers monotone and bounds-consistent, column indices inside
//!   `ncols`, delta streams that decode in-bounds, BCSR block
//!   geometry, SELL-C-σ slice lengths and padding, decomposition row
//!   coverage exactly-once.
//! * [`Validated<F>`] — a witness that `validate_structure` succeeded
//!   on the wrapped value. Because every format's fields are private
//!   and its safe constructors preserve the invariants, the witness
//!   remains truthful for the lifetime of the wrapper. Kernels require
//!   this witness to enter their unchecked fast paths, so each
//!   `// SAFETY:` comment can cite a *named, checked* invariant.
//! * [`MaybeValidated<F>`] — the kernel-facing sum: validation is
//!   attempted once at construction, and a value that fails keeps
//!   working through fully bounds-checked fallback paths instead of
//!   being rejected.
//!
//! The checks here are the **safety-relevant** invariants only. For
//! CSR in particular, sortedness of column indices inside a row is a
//! format invariant but not a safety requirement of any fast path, and
//! the `P_ML` micro-benchmark deliberately builds constant-column rows
//! — so duplicate or unsorted columns still validate.

use crate::error::SparseError;
use crate::Result;

/// Structural verification of a sparse-format value: `O(NNZ)` proof
/// that every index the format can produce during SpMV is in bounds.
pub trait ValidateFormat {
    /// Format name used in error messages and kernel diagnostics.
    fn format_name(&self) -> &'static str;

    /// Verifies every safety-relevant structural invariant.
    ///
    /// # Errors
    /// [`SparseError::Corrupt`] naming the first violated invariant.
    fn validate_structure(&self) -> Result<()>;
}

impl<T: ValidateFormat + ?Sized> ValidateFormat for &T {
    fn format_name(&self) -> &'static str {
        (**self).format_name()
    }

    fn validate_structure(&self) -> Result<()> {
        (**self).validate_structure()
    }
}

/// Witness that [`ValidateFormat::validate_structure`] succeeded on
/// the wrapped value.
///
/// The only way to obtain a `Validated<F>` is through
/// [`Validated::new`], which runs the full structural verification.
/// Holders may therefore rely on the format's invariants in `unsafe`
/// code — this is the contract the kernels' fast paths cite.
#[derive(Debug, Clone)]
pub struct Validated<F>(F);

impl<F: ValidateFormat> Validated<F> {
    /// Verifies `format` and wraps it on success.
    ///
    /// # Errors
    /// [`SparseError::Corrupt`] describing the first violated
    /// invariant; the value is dropped (use [`MaybeValidated::new`] to
    /// keep a failing value for checked execution).
    pub fn new(format: F) -> Result<Validated<F>> {
        format.validate_structure()?;
        Ok(Validated(format))
    }
}

impl<F> Validated<F> {
    /// The verified value.
    #[inline]
    pub fn get(&self) -> &F {
        &self.0
    }

    /// Unwraps the verified value.
    pub fn into_inner(self) -> F {
        self.0
    }
}

impl<F> std::ops::Deref for Validated<F> {
    type Target = F;

    fn deref(&self) -> &F {
        &self.0
    }
}

/// A format value that either carries a [`Validated`] witness or is
/// marked unvalidated. Kernels construct this once and branch on it:
/// witnessed values run the unchecked fast path, unvalidated values
/// run a fully bounds-checked fallback.
#[derive(Debug, Clone)]
pub enum MaybeValidated<F> {
    /// Structure verified; fast paths are permitted.
    Validated(Validated<F>),
    /// Verification failed; only checked execution is permitted.
    Unvalidated(F),
}

impl<F: ValidateFormat> MaybeValidated<F> {
    /// Runs the structural verification once and records the outcome,
    /// keeping the value either way.
    pub fn new(format: F) -> MaybeValidated<F> {
        match format.validate_structure() {
            Ok(()) => MaybeValidated::Validated(Validated(format)),
            Err(_) => MaybeValidated::Unvalidated(format),
        }
    }
}

impl<F> MaybeValidated<F> {
    /// Whether the witness was obtained.
    pub fn is_validated(&self) -> bool {
        matches!(self, MaybeValidated::Validated(_))
    }

    /// The wrapped value, validated or not.
    #[inline]
    pub fn get(&self) -> &F {
        match self {
            MaybeValidated::Validated(v) => v.get(),
            MaybeValidated::Unvalidated(f) => f,
        }
    }
}

/// Shared helper: verifies a CSR-shaped row pointer against an
/// element-array length. Used by every rowptr-bearing format.
pub(crate) fn check_rowptr(
    format: &'static str,
    rowptr: &[usize],
    nrows: usize,
    nnz: usize,
) -> Result<()> {
    let corrupt = |detail: String| SparseError::Corrupt { format, detail };
    if rowptr.len() != nrows + 1 {
        return Err(corrupt(format!(
            "rowptr length {} != nrows + 1 = {}",
            rowptr.len(),
            nrows + 1
        )));
    }
    if rowptr[0] != 0 {
        return Err(corrupt(format!("rowptr[0] = {} != 0", rowptr[0])));
    }
    for i in 0..nrows {
        if rowptr[i] > rowptr[i + 1] {
            return Err(corrupt(format!("rowptr not monotone at row {i}")));
        }
    }
    if rowptr[nrows] != nnz {
        return Err(corrupt(format!("rowptr[nrows] = {} != nnz = {nnz}", rowptr[nrows])));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::{Bcsr, Csr, DecomposedCsr, DeltaCsr, SellCs};

    #[test]
    fn well_formed_formats_all_validate() {
        let a = gen::circuit(600, 2, 0.4, 5, 3).unwrap();
        assert!(Validated::new(&a).is_ok());
        let d = DeltaCsr::from_csr(&a).unwrap();
        assert!(Validated::new(&d).is_ok());
        let b = Bcsr::from_csr(&a, 2, 2).unwrap();
        assert!(Validated::new(&b).is_ok());
        let s = SellCs::from_csr(&a, 8, 64).unwrap();
        assert!(Validated::new(&s).is_ok());
        let dc = DecomposedCsr::split(&a, 16).unwrap();
        assert!(Validated::new(&dc).is_ok());
    }

    #[test]
    fn witness_derefs_to_the_format() {
        let a = Csr::identity(5);
        let v = Validated::new(&a).unwrap();
        assert_eq!(v.nrows(), 5);
        assert_eq!(v.get().nnz(), 5);
    }

    #[test]
    fn maybe_validated_keeps_corrupt_values() {
        // A rowptr tail that overruns the element arrays: validation
        // must fail but the value must stay usable for checked paths.
        let a = Csr::from_raw_unchecked(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 1.0]);
        let mv = MaybeValidated::new(&a);
        assert!(!mv.is_validated());
        assert_eq!(mv.get().nnz(), 2);
    }

    #[test]
    fn corrupt_error_is_descriptive() {
        let a = Csr::from_raw_unchecked(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 1.0]);
        let err = Validated::new(&a).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("csr"), "{msg}");
        assert!(msg.contains("rowptr"), "{msg}");
    }

    #[test]
    fn unsorted_columns_still_validate() {
        // The P_ML micro-benchmark builds constant-column rows; they
        // are not legal CSR but are safety-valid (all indices in
        // bounds), so the witness accepts them.
        let a = Csr::from_raw_unchecked(2, 4, vec![0, 3, 4], vec![1, 1, 1, 2], vec![1.0; 4]);
        assert!(Validated::new(&a).is_ok());
    }
}
