//! Long-row matrix decomposition — the paper's `IMB`-class
//! optimization for matrices with highly uneven row lengths.
//!
//! The matrix is split into two parts (paper Fig. 5 / Fig. 6):
//!
//! 1. a **short part** containing every row except the long ones
//!    (long rows stay present but empty, so `y` indexing is direct);
//! 2. a **long part** listing the dense rows; during SpMV *every*
//!    thread computes a chunk of each long row and a reduction of
//!    partial sums follows.
//!
//! The paper keeps the long-row elements in place and skips them via
//! per-row offsets; we instead materialise the two parts in separate
//! arrays. The traversal order, work division and arithmetic are
//! identical, the preprocessing cost is the same `O(NNZ)` copy, and
//! the memory footprint differs only by the (negligible) duplicated
//! row pointers, so the performance behaviour the paper attributes to
//! this optimization is preserved.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::index_u32;
use crate::Result;

/// One long (dense) row extracted from the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LongRow {
    /// Original row index in the matrix.
    pub row: u32,
    /// Start of this row's slice in the long-part arrays.
    pub start: usize,
    /// End (exclusive) of this row's slice in the long-part arrays.
    pub end: usize,
}

/// A CSR matrix decomposed into a short part and a long-row part.
#[derive(Debug, Clone, PartialEq)]
pub struct DecomposedCsr {
    short: Csr,
    long_rows: Vec<LongRow>,
    long_colind: Vec<u32>,
    long_values: Vec<f64>,
    threshold: usize,
}

impl DecomposedCsr {
    /// Splits `a`: rows with more than `threshold` nonzeros go to the
    /// long part.
    ///
    /// # Errors
    /// [`SparseError::InvalidGenerator`] when `threshold == 0` (every
    /// nonzero row would be "long", which defeats the decomposition).
    pub fn split(a: &Csr, threshold: usize) -> Result<DecomposedCsr> {
        if threshold == 0 {
            return Err(SparseError::InvalidGenerator(
                "decomposition threshold must be >= 1".into(),
            ));
        }
        let nrows = a.nrows();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colind = Vec::new();
        let mut values = Vec::new();
        let mut long_rows = Vec::new();
        let mut long_colind = Vec::new();
        let mut long_values = Vec::new();
        for (i, cols, vals) in a.rows() {
            if cols.len() > threshold {
                let start = long_colind.len();
                long_colind.extend_from_slice(cols);
                long_values.extend_from_slice(vals);
                long_rows.push(LongRow { row: index_u32(i), start, end: long_colind.len() });
            } else {
                colind.extend_from_slice(cols);
                values.extend_from_slice(vals);
            }
            rowptr.push(colind.len());
        }
        let short = Csr::from_raw(nrows, a.ncols(), rowptr, colind, values)
            .expect("split preserves CSR invariants");
        Ok(DecomposedCsr { short, long_rows, long_colind, long_values, threshold })
    }

    /// Chooses a threshold the way the paper's optimizer does: a row is
    /// long when it exceeds both a multiple of the average row length
    /// and a fair per-thread share of the work. Returns `None` when
    /// the matrix has no such outlier rows (decomposition not
    /// worthwhile).
    pub fn auto_threshold(a: &Csr, nthreads: usize) -> Option<usize> {
        let n = a.nrows();
        if n == 0 || a.nnz() == 0 {
            return None;
        }
        let avg = a.nnz() as f64 / n as f64;
        let share = a.nnz() as f64 / nthreads.max(1) as f64;
        // A row qualifies as "long" when serialising it on one thread
        // would claim a substantial fraction of that thread's fair
        // share of work (and is far above the average row).
        let threshold = (avg * 16.0).max(share * 0.2).ceil() as usize;
        let threshold = threshold.max(1);
        let any_long = (0..n).any(|i| a.row_nnz(i) > threshold);
        any_long.then_some(threshold)
    }

    /// Convenience: split with [`DecomposedCsr::auto_threshold`];
    /// `None` when no row qualifies.
    pub fn auto_split(a: &Csr, nthreads: usize) -> Option<DecomposedCsr> {
        let t = Self::auto_threshold(a, nthreads)?;
        Some(Self::split(a, t).expect("auto threshold is >= 1"))
    }

    /// The short part (long rows present but empty).
    #[inline]
    pub fn short(&self) -> &Csr {
        &self.short
    }

    /// The extracted long rows.
    #[inline]
    pub fn long_rows(&self) -> &[LongRow] {
        &self.long_rows
    }

    /// Column indices of the long part.
    #[inline]
    pub fn long_colind(&self) -> &[u32] {
        &self.long_colind
    }

    /// Values of the long part.
    #[inline]
    pub fn long_values(&self) -> &[f64] {
        &self.long_values
    }

    /// Threshold used for the split.
    #[inline]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.short.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.short.ncols()
    }

    /// Total nonzeros across both parts.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.short.nnz() + self.long_values.len()
    }

    /// Nonzeros in the long part.
    #[inline]
    pub fn long_nnz(&self) -> usize {
        self.long_values.len()
    }

    /// Serial two-phase SpMV (paper Fig. 6): short rows first, then
    /// each long row.
    ///
    /// # Panics
    /// Panics on vector length mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.short.spmv(x, y);
        for lr in &self.long_rows {
            let mut sum = 0.0;
            for j in lr.start..lr.end {
                sum += self.long_values[j] * x[self.long_colind[j] as usize];
            }
            y[lr.row as usize] = sum;
        }
    }

    /// Computes the partial dot product of long row `lr` over the
    /// element sub-range `chunk` (relative to `lr.start`), the unit of
    /// work given to each thread in the parallel reduction.
    pub fn long_row_partial(&self, lr: &LongRow, chunk: std::ops::Range<usize>, x: &[f64]) -> f64 {
        let s = lr.start + chunk.start;
        let e = (lr.start + chunk.end).min(lr.end);
        let mut sum = 0.0;
        for j in s..e {
            sum += self.long_values[j] * x[self.long_colind[j] as usize];
        }
        sum
    }

    /// Like [`DecomposedCsr::long_row_partial`] with per-element
    /// bounds checks elided — the long-row reduction fast path.
    ///
    /// # Safety
    /// * `self` must hold a structure that passed
    ///   [`crate::validate::ValidateFormat::validate_structure`]
    ///   (i.e. the caller holds a [`crate::Validated`] witness): long
    ///   rows are chained slices inside the long-part arrays and every
    ///   long column index is `< ncols`.
    /// * `lr` must be one of `self.long_rows()`.
    /// * `x.len() == self.ncols()`.
    pub unsafe fn long_row_partial_unchecked(
        &self,
        lr: &LongRow,
        chunk: std::ops::Range<usize>,
        x: &[f64],
    ) -> f64 {
        let s = lr.start + chunk.start;
        let e = (lr.start + chunk.end).min(lr.end);
        let mut sum = 0.0;
        for j in s..e {
            // SAFETY: validation proved lr.end <= long_colind.len() ==
            // long_values.len() and every long column < ncols == x.len()
            // (caller contract), and j < lr.end by the loop bound.
            sum += unsafe {
                *self.long_values.get_unchecked(j)
                    * *x.get_unchecked(*self.long_colind.get_unchecked(j) as usize)
            };
        }
        sum
    }

    /// Reassembles the original matrix (used by tests).
    pub fn to_csr(&self) -> Csr {
        let mut coo = self.short.to_coo();
        for lr in &self.long_rows {
            for j in lr.start..lr.end {
                coo.push(lr.row as usize, self.long_colind[j] as usize, self.long_values[j])
                    .expect("long-part indices are in range");
            }
        }
        Csr::from_coo(&coo)
    }
}

impl crate::validate::ValidateFormat for DecomposedCsr {
    fn format_name(&self) -> &'static str {
        "decomposed-csr"
    }

    fn validate_structure(&self) -> Result<()> {
        let corrupt = |detail: String| SparseError::Corrupt { format: "decomposed-csr", detail };
        crate::validate::ValidateFormat::validate_structure(&self.short)
            .map_err(|e| corrupt(format!("short part: {e}")))?;
        if self.long_colind.len() != self.long_values.len() {
            return Err(corrupt(format!(
                "long_colind length {} != long_values length {}",
                self.long_colind.len(),
                self.long_values.len()
            )));
        }
        for (j, &c) in self.long_colind.iter().enumerate() {
            if c as usize >= self.ncols() {
                return Err(corrupt(format!(
                    "long column index {c} at position {j} >= ncols = {}",
                    self.ncols()
                )));
            }
        }
        // Long rows must chain through the long-part arrays without
        // gaps or overlap, and each covered row must be empty in the
        // short part — together this makes row coverage exactly-once.
        let mut cursor = 0usize;
        for (k, lr) in self.long_rows.iter().enumerate() {
            if lr.start != cursor {
                return Err(corrupt(format!(
                    "long row {k} starts at {} but the previous slice ended at {cursor}",
                    lr.start
                )));
            }
            if lr.end < lr.start {
                return Err(corrupt(format!(
                    "long row {k} has end {} < start {}",
                    lr.end, lr.start
                )));
            }
            cursor = lr.end;
            let row = lr.row as usize;
            if row >= self.nrows() {
                return Err(corrupt(format!(
                    "long row {k} names row {row} >= nrows = {}",
                    self.nrows()
                )));
            }
            if self.short.row_nnz(row) != 0 {
                return Err(corrupt(format!("row {row} appears in both the short and long parts")));
            }
        }
        if cursor != self.long_colind.len() {
            return Err(corrupt(format!(
                "long rows cover {cursor} elements but the long part stores {}",
                self.long_colind.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for lr in &self.long_rows {
            if !seen.insert(lr.row) {
                return Err(corrupt(format!("row {} listed as long twice", lr.row)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    /// n-row matrix with one dense row 0 and unit diagonal elsewhere.
    fn skewed(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
        }
        for i in 1..n {
            coo.push(i, i, 2.0).unwrap();
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn split_extracts_long_rows() {
        let a = skewed(100);
        let d = DecomposedCsr::split(&a, 10).unwrap();
        assert_eq!(d.long_rows().len(), 1);
        assert_eq!(d.long_rows()[0].row, 0);
        assert_eq!(d.long_nnz(), 100);
        assert_eq!(d.short().row_nnz(0), 0);
        assert_eq!(d.nnz(), a.nnz());
    }

    #[test]
    fn zero_threshold_rejected() {
        let a = skewed(4);
        assert!(DecomposedCsr::split(&a, 0).is_err());
    }

    #[test]
    fn spmv_matches_plain_csr() {
        let a = skewed(64);
        let d = DecomposedCsr::split(&a, 8).unwrap();
        let x: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut y_ref = vec![0.0; 64];
        let mut y = vec![0.0; 64];
        a.spmv(&x, &mut y_ref);
        d.spmv(&x, &mut y);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_to_csr() {
        let a = skewed(32);
        let d = DecomposedCsr::split(&a, 4).unwrap();
        assert_eq!(d.to_csr(), a);
    }

    #[test]
    fn auto_threshold_detects_skew() {
        let a = skewed(4096);
        assert!(DecomposedCsr::auto_threshold(&a, 64).is_some());
        let id = Csr::identity(4096);
        assert!(DecomposedCsr::auto_threshold(&id, 64).is_none());
    }

    #[test]
    fn auto_split_none_for_balanced() {
        assert!(DecomposedCsr::auto_split(&Csr::identity(128), 8).is_none());
    }

    #[test]
    fn long_row_partials_sum_to_row_value() {
        let a = skewed(100);
        let d = DecomposedCsr::split(&a, 10).unwrap();
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let lr = &d.long_rows()[0];
        let len = lr.end - lr.start;
        let mut total = 0.0;
        let chunk = 7;
        let mut s = 0;
        while s < len {
            total += d.long_row_partial(lr, s..(s + chunk).min(len), &x);
            s += chunk;
        }
        let mut y = vec![0.0; 100];
        a.spmv(&x, &mut y);
        assert!((total - y[0]).abs() < 1e-9);
    }

    #[test]
    fn threshold_boundary_row_stays_short() {
        // Row with exactly `threshold` nonzeros is NOT long.
        let mut coo = Coo::new(2, 8).unwrap();
        for c in 0..4 {
            coo.push(0, c, 1.0).unwrap();
        }
        coo.push(1, 0, 1.0).unwrap();
        let a = Csr::from_coo(&coo);
        let d = DecomposedCsr::split(&a, 4).unwrap();
        assert!(d.long_rows().is_empty());
        let d2 = DecomposedCsr::split(&a, 3).unwrap();
        assert_eq!(d2.long_rows().len(), 1);
    }
}
