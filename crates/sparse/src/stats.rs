//! Per-row structural statistics of a sparse matrix.
//!
//! These are the raw ingredients of the paper's Table 2 features
//! (`nnz_i`, `bw_i`, `scatter_i`, `clustering_i`, `misses_i`) plus a
//! few aggregates used by generators and the Inspector-Executor
//! baseline.

use crate::csr::Csr;
use crate::index_u32;

/// Summary statistics (min/max/mean/standard deviation) of a per-row
/// quantity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Minimum over all rows.
    pub min: f64,
    /// Maximum over all rows.
    pub max: f64,
    /// Arithmetic mean over all rows.
    pub avg: f64,
    /// Population standard deviation over all rows.
    pub sd: f64,
}

impl Summary {
    /// Computes a summary over an iterator of row quantities.
    /// Returns the all-zero summary for an empty iterator.
    #[allow(clippy::should_implement_trait)] // not the trait: not fallible-generic
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let mut n = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for v in iter {
            n += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sumsq += v * v;
        }
        if n == 0 {
            return Summary::default();
        }
        let avg = sum / n as f64;
        let var = (sumsq / n as f64 - avg * avg).max(0.0);
        Summary { min, max, avg, sd: var.sqrt() }
    }
}

/// Per-row structural statistics of a CSR matrix.
///
/// Definitions follow the paper exactly:
/// * `nnz_i` — nonzeros in row `i`;
/// * `bw_i` — column distance between the first and last nonzero of
///   row `i` (0 for rows with fewer than 2 nonzeros);
/// * `scatter_i = nnz_i / bw_i` (1.0 for degenerate rows — the densest
///   possible packing);
/// * `clustering_i = ngroups_i / nnz_i` where `ngroups_i` counts runs
///   of consecutive column indices (0 for empty rows);
/// * `misses_i` — nonzeros whose column distance from the previous
///   nonzero in the row exceeds the number of elements per cache line
///   (naive cache-miss estimate of the paper).
#[derive(Debug, Clone)]
pub struct RowStats {
    /// Nonzeros per row.
    pub nnz: Vec<u32>,
    /// Column span per row.
    pub bw: Vec<u32>,
    /// `nnz_i / bw_i` per row.
    pub scatter: Vec<f64>,
    /// `ngroups_i / nnz_i` per row.
    pub clustering: Vec<f64>,
    /// Estimated cache-miss-generating elements per row.
    pub misses: Vec<u32>,
}

impl RowStats {
    /// Computes all per-row statistics in a single `O(NNZ)` sweep.
    ///
    /// `line_elems` is the number of matrix elements that fit in one
    /// cache line of the target platform (8 for 64-byte lines of f64),
    /// used by the `misses_i` estimate.
    pub fn compute(a: &Csr, line_elems: u32) -> RowStats {
        let n = a.nrows();
        let mut nnz = Vec::with_capacity(n);
        let mut bw = Vec::with_capacity(n);
        let mut scatter = Vec::with_capacity(n);
        let mut clustering = Vec::with_capacity(n);
        let mut misses = Vec::with_capacity(n);
        for (_, cols, _) in a.rows() {
            let k = index_u32(cols.len());
            nnz.push(k);
            if cols.is_empty() {
                bw.push(0);
                scatter.push(1.0);
                clustering.push(0.0);
                misses.push(0);
                continue;
            }
            let span = cols[cols.len() - 1] - cols[0];
            bw.push(span);
            scatter.push(if span == 0 { 1.0 } else { f64::from(k) / f64::from(span) });
            let mut groups = 1u32;
            let mut m = 0u32;
            for w in cols.windows(2) {
                let dist = w[1] - w[0];
                if dist > 1 {
                    groups += 1;
                }
                if dist > line_elems {
                    m += 1;
                }
            }
            clustering.push(f64::from(groups) / f64::from(k));
            misses.push(m);
        }
        RowStats { nnz, bw, scatter, clustering, misses }
    }

    /// Summary of the `nnz_i` sequence.
    pub fn nnz_summary(&self) -> Summary {
        Summary::from_iter(self.nnz.iter().map(|&v| f64::from(v)))
    }

    /// Summary of the `bw_i` sequence.
    pub fn bw_summary(&self) -> Summary {
        Summary::from_iter(self.bw.iter().map(|&v| f64::from(v)))
    }

    /// Summary of the `scatter_i` sequence.
    pub fn scatter_summary(&self) -> Summary {
        Summary::from_iter(self.scatter.iter().copied())
    }

    /// Mean of the `clustering_i` sequence.
    pub fn clustering_avg(&self) -> f64 {
        mean(&self.clustering)
    }

    /// Mean of the `misses_i` sequence.
    pub fn misses_avg(&self) -> f64 {
        if self.misses.is_empty() {
            0.0
        } else {
            self.misses.iter().map(|&v| f64::from(v)).sum::<f64>() / self.misses.len() as f64
        }
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn from_rows(ncols: usize, rows: &[&[usize]]) -> Csr {
        let mut coo = Coo::new(rows.len(), ncols).unwrap();
        for (i, cols) in rows.iter().enumerate() {
            for &c in *cols {
                coo.push(i, c, 1.0).unwrap();
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn summary_of_constant_sequence() {
        let s = Summary::from_iter([3.0, 3.0, 3.0]);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.avg, 3.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        assert_eq!(Summary::from_iter(std::iter::empty()), Summary::default());
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.avg, 2.5);
        assert!((s.sd - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_stats_basic() {
        // row 0: cols 0,1,2 (one contiguous group, span 2)
        // row 1: cols 0, 100 (two groups, span 100, one "miss" at dist 100)
        // row 2: empty
        let a = from_rows(128, &[&[0, 1, 2], &[0, 100], &[]]);
        let st = RowStats::compute(&a, 8);
        assert_eq!(st.nnz, vec![3, 2, 0]);
        assert_eq!(st.bw, vec![2, 100, 0]);
        assert!((st.scatter[0] - 1.5).abs() < 1e-12);
        assert!((st.scatter[1] - 0.02).abs() < 1e-12);
        assert_eq!(st.scatter[2], 1.0);
        assert!((st.clustering[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((st.clustering[1] - 1.0).abs() < 1e-12);
        assert_eq!(st.misses, vec![0, 1, 0]);
    }

    #[test]
    fn dense_row_has_no_misses_and_unit_clustering_fraction() {
        let cols: Vec<usize> = (0..64).collect();
        let a = from_rows(64, &[&cols]);
        let st = RowStats::compute(&a, 8);
        assert_eq!(st.misses, vec![0]);
        assert!((st.clustering[0] - 1.0 / 64.0).abs() < 1e-12);
        assert_eq!(st.bw, vec![63]);
    }

    #[test]
    fn scattered_row_generates_misses() {
        let cols: Vec<usize> = (0..10).map(|k| k * 100).collect();
        let a = from_rows(1000, &[&cols]);
        let st = RowStats::compute(&a, 8);
        assert_eq!(st.misses, vec![9]);
        assert!((st.clustering[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_element_row() {
        let a = from_rows(10, &[&[4]]);
        let st = RowStats::compute(&a, 8);
        assert_eq!(st.nnz, vec![1]);
        assert_eq!(st.bw, vec![0]);
        assert_eq!(st.scatter, vec![1.0]);
        assert_eq!(st.misses, vec![0]);
    }

    #[test]
    fn summaries_aggregate() {
        let a = from_rows(16, &[&[0], &[0, 1], &[0, 1, 2]]);
        let st = RowStats::compute(&a, 8);
        let s = st.nnz_summary();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.avg, 2.0);
        assert!(st.misses_avg() < 1e-12);
    }
}
