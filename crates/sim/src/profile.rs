//! Structural + cache profile of a matrix on a machine.
//!
//! Computed once per (matrix, machine) pair and shared by every
//! simulated kernel variant and bound.
//!
//! The `x[colind[j]]` stream is driven through a **two-level** cache
//! simulation:
//!
//! * a per-core **private** cache (the per-core L2, or the per-core
//!   slice of the Phi's distributed L2) — misses here cost latency;
//! * the aggregate **LLC** — private misses that also miss here go to
//!   main memory (full latency + bandwidth traffic), while LLC hits
//!   cost the remote-L2/L3 latency only.
//!
//! Each private miss is further classified as *sequential*
//! (next-line stride, coverable by a hardware stream prefetcher) or
//! *random* (the latency-exposed misses that define the `ML` class).

use spmv_machine::cache::{Cache, CacheConfig};
use spmv_machine::MachineModel;
use spmv_sparse::features::working_set_bytes;
use spmv_sparse::{Csr, DeltaWidth};

/// Per-row miss counters of the `x` stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowMisses {
    /// Sequential-stride private misses satisfied by the LLC.
    pub seq_llc: u32,
    /// Sequential-stride private misses going to memory.
    pub seq_mem: u32,
    /// Random private misses satisfied by the LLC.
    pub rand_llc: u32,
    /// Random private misses going to memory.
    pub rand_mem: u32,
}

impl RowMisses {
    /// All private-cache misses of the row.
    #[inline]
    pub fn total(&self) -> u32 {
        self.seq_llc + self.seq_mem + self.rand_llc + self.rand_mem
    }

    /// Misses that consume main-memory bandwidth.
    #[inline]
    pub fn mem(&self) -> u32 {
        self.seq_mem + self.rand_mem
    }

    /// Random (non-prefetchable) misses.
    #[inline]
    pub fn rand(&self) -> u32 {
        self.rand_llc + self.rand_mem
    }
}

/// Per-row structure plus simulated cache behaviour of the
/// `x[colind[j]]` stream on a specific machine.
#[derive(Debug, Clone)]
pub struct MatrixProfile {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Nonzeros per row.
    pub row_nnz: Vec<u32>,
    /// Warm `x`-stream miss counters per row.
    pub row_misses: Vec<RowMisses>,
    /// CSR footprint in bytes (`S_CSR`).
    pub csr_bytes: usize,
    /// Bytes of the values array alone (`S_values`, for `P_peak`).
    pub values_bytes: usize,
    /// Footprint if delta-compressed at the auto-chosen width.
    pub delta_bytes: usize,
    /// Index-stream bytes per nonzero under delta compression
    /// (CSR uses 4).
    pub delta_idx_bytes_per_nnz: f64,
    /// SpMV working-set bytes (`S_CSR + S_x + S_y`).
    pub working_set_bytes: usize,
    /// Copy of the row pointer (for partitioning in the cost model).
    pub rowptr: Vec<usize>,
    /// Number of dense 2×2 tiles a BCSR conversion would store (for
    /// the `RegisterBlock` extension optimization).
    pub bcsr2x2_blocks: usize,
    /// Stored slots (incl. padding) of a SELL-8-256 conversion (for
    /// the `SlicedEll` extension optimization).
    pub sell_slots: usize,
}

impl MatrixProfile {
    /// Analyzes `a` for execution on `machine`.
    ///
    /// Runs two passes over the column indices and counts misses in
    /// the second (warm) pass, matching the paper's warm-cache
    /// measurement methodology. When the working set exceeds the LLC,
    /// the LLC capacity available to `x` is halved to account for the
    /// streaming matrix data competing for it.
    pub fn analyze(a: &Csr, machine: &MachineModel) -> MatrixProfile {
        let nrows = a.nrows();
        // `working_set_bytes` already includes the x and y vectors
        // (`S_CSR + S_x + S_y`); adding them again here used to
        // inflate the working set by 8·(nrows+ncols) bytes and flip
        // cache-residency decisions near the LLC boundary.
        let ws = working_set_bytes(a);
        let llc_for_x =
            if ws <= machine.llc_bytes() { machine.llc_bytes() } else { machine.llc_bytes() / 2 };
        let priv_cfg = CacheConfig {
            capacity_bytes: machine.private_cache_bytes(),
            line_bytes: machine.line_bytes,
            assoc: 8,
        };
        let llc_cfg = CacheConfig {
            capacity_bytes: llc_for_x.max(priv_cfg.capacity_bytes),
            line_bytes: machine.line_bytes,
            assoc: 8,
        };
        let mut private = Cache::new(priv_cfg);
        let mut llc = Cache::new(llc_cfg);
        // Pass 1: warm-up both levels.
        for &c in a.colind() {
            let addr = u64::from(c) * 8;
            if !private.access(addr) {
                llc.access(addr);
            }
        }
        // Pass 2: measured, classifying each private miss.
        let line_words = (machine.line_bytes / 8) as u64;
        let mut row_nnz = Vec::with_capacity(nrows);
        let mut row_misses = Vec::with_capacity(nrows);
        for (_, cols, _) in a.rows() {
            row_nnz.push(cols.len() as u32);
            let mut m = RowMisses::default();
            let mut prev_line = u64::MAX - 1;
            for &c in cols {
                let addr = u64::from(c) * 8;
                let line = u64::from(c) / line_words;
                if !private.access(addr) {
                    let in_llc = llc.access(addr);
                    let sequential = line == prev_line + 1 || line == prev_line;
                    match (sequential, in_llc) {
                        (true, true) => m.seq_llc += 1,
                        (true, false) => m.seq_mem += 1,
                        (false, true) => m.rand_llc += 1,
                        (false, false) => m.rand_mem += 1,
                    }
                }
                prev_line = line;
            }
            row_misses.push(m);
        }

        let (delta_bytes, delta_idx) = delta_footprint(a);
        let bcsr2x2_blocks = count_2x2_blocks(a);
        let sell_slots = sell_slots(&row_nnz, 8, 256);
        MatrixProfile {
            nrows,
            ncols: a.ncols(),
            nnz: a.nnz(),
            row_nnz,
            row_misses,
            csr_bytes: a.footprint_bytes(),
            values_bytes: a.values_bytes(),
            delta_bytes,
            delta_idx_bytes_per_nnz: delta_idx,
            working_set_bytes: working_set_bytes(a),
            rowptr: a.rowptr().to_vec(),
            bcsr2x2_blocks,
            sell_slots,
        }
    }

    /// SELL-8-256 fill ratio: stored slots per original nonzero.
    pub fn sell_fill(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.sell_slots as f64 / self.nnz as f64
    }

    /// Footprint of the 2×2 BCSR form in bytes.
    pub fn bcsr_bytes(&self) -> usize {
        let nbrows = self.nrows.div_ceil(2);
        (nbrows + 1) * 8 + self.bcsr2x2_blocks * 4 + self.bcsr2x2_blocks * 4 * 8
    }

    /// BCSR fill ratio: stored slots per original nonzero (>= 1).
    pub fn bcsr_fill(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        (self.bcsr2x2_blocks * 4) as f64 / self.nnz as f64
    }

    /// Total private-cache misses of the `x` stream.
    pub fn total_misses(&self) -> u64 {
        self.row_misses.iter().map(|m| u64::from(m.total())).sum()
    }

    /// Total random (latency-exposed) misses.
    pub fn total_rand_misses(&self) -> u64 {
        self.row_misses.iter().map(|m| u64::from(m.rand())).sum()
    }

    /// Total misses that consume main-memory bandwidth.
    pub fn total_mem_misses(&self) -> u64 {
        self.row_misses.iter().map(|m| u64::from(m.mem())).sum()
    }

    /// `S_x + S_y` in bytes (`M_{xy,min}` of the bound analysis).
    pub fn xy_bytes(&self) -> usize {
        (self.ncols + self.nrows) * 8
    }
}

/// Stored slots of a SELL-C-σ conversion, computable from row lengths
/// alone: rows sort (descending) inside σ-windows, then each C-row
/// chunk pads to its maximum length.
fn sell_slots(row_nnz: &[u32], c: usize, sigma: usize) -> usize {
    let mut slots = 0usize;
    let mut window: Vec<u32> = Vec::with_capacity(sigma);
    for win in row_nnz.chunks(sigma.max(c)) {
        window.clear();
        window.extend_from_slice(win);
        window.sort_unstable_by(|a, b| b.cmp(a));
        for chunk in window.chunks(c) {
            slots += chunk[0] as usize * c.min(chunk.len()).max(1);
            // Padding lanes of a ragged final chunk still store slots
            // in the real layout; count the full chunk width.
            if chunk.len() < c {
                slots += chunk[0] as usize * (c - chunk.len());
            }
        }
    }
    slots
}

/// Counts distinct dense 2x2 tiles of `a` without materialising the
/// BCSR form: for each block row, merge the two rows' block-column
/// sequences (`col / 2`) and count distinct values. `O(NNZ)`.
fn count_2x2_blocks(a: &Csr) -> usize {
    let mut blocks = 0usize;
    let nrows = a.nrows();
    let mut br = 0usize;
    while br * 2 < nrows {
        let r0 = 2 * br;
        let (c0, _) = a.row(r0);
        let c1 = if r0 + 1 < nrows { a.row(r0 + 1).0 } else { &[] };
        // Merge two sorted sequences of col/2 counting distinct.
        let (mut i, mut j) = (0usize, 0usize);
        let mut prev = u32::MAX;
        while i < c0.len() || j < c1.len() {
            let a0 = c0.get(i).map(|&c| c / 2);
            let a1 = c1.get(j).map(|&c| c / 2);
            let take = match (a0, a1) {
                (Some(x), Some(y)) if x <= y => {
                    i += 1;
                    x
                }
                (Some(_), Some(y)) => {
                    j += 1;
                    y
                }
                (Some(x), None) => {
                    i += 1;
                    x
                }
                (None, Some(y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            if take != prev {
                blocks += 1;
                prev = take;
            }
        }
        br += 1;
    }
    blocks
}

/// Computes the delta-compressed footprint without materialising the
/// compressed matrix: picks the cheaper of 8-/16-bit widths exactly as
/// [`spmv_sparse::DeltaCsr::from_csr`] does.
fn delta_footprint(a: &Csr) -> (usize, f64) {
    let mut esc8 = 0usize;
    let mut esc16 = 0usize;
    for (_, cols, _) in a.rows() {
        for w in cols.windows(2) {
            let gap = w[1] - w[0];
            if gap > DeltaWidth::U8.max_inline() {
                esc8 += 1;
            }
            if gap > DeltaWidth::U16.max_inline() {
                esc16 += 1;
            }
        }
    }
    let nnz = a.nnz();
    let n = a.nrows();
    let stream8 = nnz + 4 * esc8;
    let stream16 = 2 * nnz + 4 * esc16;
    let stream = stream8.min(stream16);
    let total = (n + 1) * 8      // rowptr
        + n * 4                  // firstcol
        + (n + 1) * 4            // exc_ptr
        + stream
        + nnz * 8; // values
    let idx_per_nnz = if nnz == 0 { 0.0 } else { stream as f64 / nnz as f64 };
    (total, idx_per_nnz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::DeltaCsr;

    #[test]
    fn small_banded_x_fits_private_cache() {
        let a = gen::banded(5_000, 8, 1.0, 3).unwrap();
        // x = 40 KB < 526 KB private slice on KNC: zero warm misses.
        let p = MatrixProfile::analyze(&a, &MachineModel::knc());
        assert_eq!(p.total_misses(), 0);
        assert_eq!(p.nnz, a.nnz());
    }

    #[test]
    fn irregular_wide_matrix_exposes_random_latency_misses() {
        // x = 800 KB exceeds the KNC private slice but fits the LLC:
        // random misses should be LLC-served, not memory-served.
        let a = gen::random_uniform(100_000, 8, 5).unwrap();
        let p = MatrixProfile::analyze(&a, &MachineModel::knc());
        assert!(p.total_rand_misses() > p.nnz as u64 / 4, "{}", p.total_rand_misses());
        let mem = p.total_mem_misses();
        assert!(mem < p.total_misses() / 10, "mem-bound misses {mem}");
    }

    #[test]
    fn same_matrix_has_fewer_latency_misses_on_broadwell_path() {
        // Broadwell's private L2 is smaller, but what matters for the
        // ML class is that the cost model charges llc_latency_ns=18ns
        // there; the profile itself just counts structure. Verify the
        // counters exist and are consistent.
        let a = gen::random_uniform(100_000, 8, 5).unwrap();
        let p = MatrixProfile::analyze(&a, &MachineModel::broadwell());
        assert_eq!(
            p.total_misses(),
            p.total_rand_misses()
                + p.row_misses.iter().map(|m| u64::from(m.seq_llc + m.seq_mem)).sum::<u64>()
        );
    }

    #[test]
    fn streaming_misses_classified_sequential() {
        // Rows scan wide contiguous blocks through a tiny private cache.
        let a = gen::block_dense(8_192, 2_048, 0, 7).unwrap();
        let mut m = MachineModel::knc();
        m.l2_bytes = 256 << 10; // shrink so x (64 KB per tile row) streams
        let p = MatrixProfile::analyze(&a, &m);
        let seq: u64 = p.row_misses.iter().map(|mm| u64::from(mm.seq_llc + mm.seq_mem)).sum();
        let rand = p.total_rand_misses();
        assert!(seq > 10 * rand.max(1), "seq {seq} rand {rand}");
    }

    #[test]
    fn delta_footprint_matches_real_compression() {
        for a in [gen::banded(2_000, 6, 1.0, 1).unwrap(), gen::random_uniform(800, 10, 2).unwrap()]
        {
            let (bytes, _) = delta_footprint(&a);
            let d = DeltaCsr::from_csr(&a).unwrap();
            assert_eq!(bytes, d.footprint_bytes());
        }
    }

    /// Regression for the working-set double count: `analyze` used to
    /// add `8·(nrows+ncols)` on top of `working_set_bytes` (which
    /// already includes x and y), halving the LLC available to `x`
    /// for matrices near the cache boundary.
    #[test]
    fn working_set_not_double_counted_at_llc_boundary() {
        use spmv_sparse::Coo;
        // 4 rows × 8192 cols; each row scans its quarter of x at
        // stride 8 (one access per 64-byte line): 1024 distinct lines
        // = 64 KiB of x touched.
        let (nrows, ncols, stride) = (4usize, 8192usize, 8usize);
        let mut coo = Coo::new(nrows, ncols).unwrap();
        let per_row = ncols / nrows;
        for r in 0..nrows {
            for c in (r * per_row..(r + 1) * per_row).step_by(stride) {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let a = Csr::from_coo(&coo);
        // Pin the exact working set: S_CSR + S_x + S_y, nothing more.
        // CSR = 5 rowptr entries ×8 + 1024 colind ×4 + 1024 values ×8.
        let ws = working_set_bytes(&a);
        assert_eq!(ws, (nrows + 1) * 8 + a.nnz() * 4 + a.nnz() * 8 + (nrows + ncols) * 8);
        assert_eq!(ws, 77_896);

        // LLC sized exactly at the working set: the matrix is
        // cache-resident, so the full LLC must stay available to `x`
        // (its 128-set power-of-two geometry holds exactly the 1024
        // touched lines). Any inflation of the estimate — the old
        // code added 65 568 bytes — halves the LLC and spills every
        // warm miss to memory.
        let mut m = MachineModel::broadwell();
        m.line_bytes = 64;
        m.l2_bytes = 8 << 10; // private cache too small for x
        m.l3_bytes = ws;
        let p = MatrixProfile::analyze(&a, &m);
        assert_eq!(p.total_misses(), a.nnz() as u64, "every warm access misses private");
        assert_eq!(
            p.total_mem_misses(),
            0,
            "working set fits the LLC exactly; memory-served misses mean the \
             estimate was inflated"
        );
    }

    #[test]
    fn footprints_are_consistent() {
        let a = gen::banded(1_000, 4, 1.0, 9).unwrap();
        let p = MatrixProfile::analyze(&a, &MachineModel::broadwell());
        assert_eq!(p.csr_bytes, a.footprint_bytes());
        assert_eq!(p.values_bytes, a.values_bytes());
        assert!(p.delta_bytes < p.csr_bytes);
        assert_eq!(p.xy_bytes(), 2_000 * 8);
        assert_eq!(p.working_set_bytes, p.csr_bytes + p.xy_bytes());
    }

    #[test]
    fn row_counters_align_with_rows() {
        let a = gen::powerlaw(3_000, 6, 2.0, 4).unwrap();
        let p = MatrixProfile::analyze(&a, &MachineModel::knl());
        assert_eq!(p.row_nnz.len(), a.nrows());
        assert_eq!(p.row_misses.len(), a.nrows());
        let nnz_sum: u64 = p.row_nnz.iter().map(|&v| u64::from(v)).sum();
        assert_eq!(nnz_sum, a.nnz() as u64);
    }
}
