//! Per-class performance bounds (paper §III-B).
//!
//! For every bottleneck class the paper derives an upper bound on
//! SpMV performance by eliminating that bottleneck:
//!
//! * `P_MB` — analytic: minimum traffic at maximum sustainable
//!   bandwidth, `2·NNZ / ((S_format + S_x + S_y) / B_max)`;
//! * `P_ML` — measured: run the kernel with irregular `x` accesses
//!   converted to regular ones (`colind[j] = i`);
//! * `P_IMB` — measured: `2·NNZ / t_median` over per-thread times of
//!   the baseline run;
//! * `P_CMP` — measured: run the kernel with indirect references
//!   eliminated entirely (unit-stride accesses only);
//! * `P_peak` — analytic: all indexing structures compressed away,
//!   `2·NNZ / ((S_values + S_x + S_y) / B_max)`.
//!
//! Here "measured" means simulated through [`CostModel`]; the same
//! collection can also be performed on real hardware by the
//! `spmv-tuner` crate's profiling front-end.

use crate::cost::{CostModel, SimResult, SimSpec};
use crate::profile::MatrixProfile;

/// The bound profile of one matrix on one machine (all in GFLOP/s).
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Baseline CSR performance (`P_CSR`).
    pub p_csr: f64,
    /// Memory-bandwidth bound.
    pub p_mb: f64,
    /// Memory-latency bound (regularised `x` accesses).
    pub p_ml: f64,
    /// Imbalance bound (median thread time).
    pub p_imb: f64,
    /// Computation bound (no indirect references).
    pub p_cmp: f64,
    /// Format-independent peak.
    pub p_peak: f64,
    /// The simulated baseline run the bounds were derived from.
    pub baseline: SimResult,
}

impl Bounds {
    /// Formats the bound profile as a compact table row.
    pub fn summary(&self) -> String {
        format!(
            "P_CSR={:7.2}  P_MB={:7.2}  P_ML={:7.2}  P_IMB={:7.2}  P_CMP={:7.2}  P_peak={:7.2}",
            self.p_csr, self.p_mb, self.p_ml, self.p_imb, self.p_cmp, self.p_peak
        )
    }
}

/// Collects the full bound profile for `profile` under `model`.
pub fn collect_bounds(model: &CostModel, profile: &MatrixProfile) -> Bounds {
    let flops = 2.0 * profile.nnz as f64;
    let bw = model.machine().bandwidth_for_working_set(profile.working_set_bytes) * 1e9;

    let baseline = model.simulate(profile, SimSpec::baseline());
    let p_csr = baseline.gflops;

    let mb_bytes = (profile.csr_bytes + profile.xy_bytes()) as f64;
    let p_mb = flops / (mb_bytes / bw) / 1e9;

    let ml = model.simulate(profile, SimSpec { regular_x: true, ..SimSpec::baseline() });
    let p_ml = ml.gflops;

    let med = baseline.median_thread_seconds().max(1e-12);
    let p_imb = flops / med / 1e9;

    let cmp = model.simulate(profile, SimSpec { no_index: true, ..SimSpec::baseline() });
    let p_cmp = cmp.gflops;

    let peak_bytes = (profile.values_bytes + profile.xy_bytes()) as f64;
    let p_peak = flops / (peak_bytes / bw) / 1e9;

    Bounds { p_csr, p_mb, p_ml, p_imb, p_cmp, p_peak, baseline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_machine::MachineModel;
    use spmv_sparse::gen;

    fn bounds_for(a: &spmv_sparse::Csr, m: MachineModel) -> Bounds {
        let model = CostModel::new(m);
        let p = MatrixProfile::analyze(a, model.machine());
        collect_bounds(&model, &p)
    }

    #[test]
    fn peak_dominates_mb() {
        // P_peak assumes the indexing structures vanish, so it is
        // always at least P_MB.
        for a in
            [gen::banded(20_000, 20, 0.9, 1).unwrap(), gen::powerlaw(50_000, 8, 2.0, 2).unwrap()]
        {
            let b = bounds_for(&a, MachineModel::knc());
            assert!(b.p_peak >= b.p_mb, "{}", b.summary());
        }
    }

    #[test]
    fn regular_matrix_sits_near_its_bounds() {
        // A large regular banded matrix: P_CSR close to P_MB and P_ML
        // brings nothing (the paper's MB archetype).
        let a = gen::banded(60_000, 40, 0.9, 1).unwrap();
        let b = bounds_for(&a, MachineModel::knc());
        assert!(b.p_csr / b.p_mb > 0.5, "{}", b.summary());
        assert!(b.p_ml / b.p_csr < 1.25, "{}", b.summary());
        assert!(b.p_imb / b.p_csr < 1.3, "{}", b.summary());
    }

    #[test]
    fn irregular_matrix_has_high_ml_headroom_on_knc() {
        let a = gen::random_uniform(120_000, 12, 7).unwrap();
        let b = bounds_for(&a, MachineModel::knc());
        assert!(b.p_ml / b.p_csr > 1.5, "{}", b.summary());
    }

    #[test]
    fn skewed_matrix_has_high_imb_headroom() {
        let a = gen::circuit(150_000, 4, 0.3, 6, 9).unwrap();
        let b = bounds_for(&a, MachineModel::knc());
        assert!(b.p_imb / b.p_csr > 2.0, "{}", b.summary());
        // ... and its serialised dense rows are compute-limited:
        assert!(b.p_cmp < b.p_mb, "{}", b.summary());
    }

    #[test]
    fn summary_contains_all_bounds() {
        let a = gen::banded(1_000, 4, 1.0, 3).unwrap();
        let b = bounds_for(&a, MachineModel::broadwell());
        let s = b.summary();
        for key in ["P_CSR", "P_MB", "P_ML", "P_IMB", "P_CMP", "P_peak"] {
            assert!(s.contains(key));
        }
    }
}
