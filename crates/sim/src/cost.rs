//! Per-thread SpMV cost model.
//!
//! For a given machine, matrix profile and kernel variant, each
//! thread's execution time is modelled as
//!
//! ```text
//! t_p = max(compute_p, memory_p) + latency_stalls_p
//! ```
//!
//! * `compute_p` — cycles for the nonzeros (scalar vs vectorized,
//!   delta-decode and prefetch-issue overheads) plus per-row loop
//!   bookkeeping, at the thread's SMT-shared issue rate;
//! * `memory_p` — the thread's bytes served by a drain model: all
//!   active threads share the platform's sustainable bandwidth
//!   equally, each capped at `2 B / T` (a single thread cannot pull
//!   the full socket bandwidth), threads dropping out as they finish;
//! * `latency_stalls_p` — private-cache misses on `x`, charged the
//!   remote-LLC or DRAM latency divided by the thread's memory-level
//!   parallelism; hardware prefetch covers sequential misses,
//!   software prefetch (the `ML` optimization) covers a fraction of
//!   random ones.
//!
//! Scheduling policies redistribute rows exactly as the real kernels
//! do: contiguous nnz-balanced partitions for the baseline, greedy
//! least-loaded chunk assignment for guided/`auto`, and an
//! all-threads split of long rows for the decomposed kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spmv_kernels::variant::{KernelVariant, Optimization};
use spmv_machine::MachineModel;
use spmv_sparse::csr::partition_rows_by_nnz;

use crate::profile::MatrixProfile;

/// Coverage fraction of random misses hidden by software prefetching.
const SW_PREFETCH_COVERAGE: f64 = 0.75;
/// Extra issue cycles per nonzero for the prefetch instruction.
const PREFETCH_CYCLES_PER_NNZ: f64 = 1.0;
/// Extra cycles per nonzero to decode a delta-compressed index.
const DELTA_DECODE_CYCLES: f64 = 1.0;
/// Scalar cycles per nonzero (load idx, load val, gather x, FMA).
const SCALAR_CYCLES_PER_NNZ: f64 = 4.0;
/// Vector gather slowdown factor relative to ideal SIMD speedup.
const GATHER_FACTOR: f64 = 2.0;
/// Synchronisation cost (cycles per thread) of the decomposed
/// kernel's long-row reduction phase.
const LONG_PHASE_BARRIER_CYCLES: f64 = 10_000.0;

/// What to simulate: a kernel variant, optionally with the paper's
/// §III-B micro-benchmark modifications applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSpec {
    /// Optimization set.
    pub variant: KernelVariant,
    /// `P_ML` micro-benchmark: irregular accesses to `x` converted to
    /// regular ones (`colind[j] = i`).
    pub regular_x: bool,
    /// `P_CMP` micro-benchmark: indirect references eliminated
    /// entirely (no `colind` loads or traffic).
    pub no_index: bool,
    /// Partition rows into equal-row-count blocks instead of the
    /// baseline's nnz-balanced blocks (models library kernels like MKL
    /// CSR that do not inspect the nonzero distribution).
    pub equal_rows: bool,
}

impl SimSpec {
    /// Plain execution of a variant.
    pub fn variant(variant: KernelVariant) -> SimSpec {
        SimSpec { variant, regular_x: false, no_index: false, equal_rows: false }
    }

    /// The unmodified baseline CSR kernel.
    pub fn baseline() -> SimSpec {
        Self::variant(KernelVariant::BASELINE)
    }
}

/// Result of one simulated SpMV execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-thread execution times in seconds.
    pub thread_seconds: Vec<f64>,
    /// Parallel makespan (max thread time) in seconds.
    pub seconds: f64,
    /// Achieved GFLOP/s (`2 * nnz / makespan`).
    pub gflops: f64,
    /// Total main-memory traffic in bytes.
    pub traffic_bytes: f64,
}

impl SimResult {
    /// Median thread time — input to the paper's `P_IMB` bound.
    ///
    /// Delegates to [`spmv_telemetry::median`], the same helper the
    /// measured path ([`spmv_kernels::schedule::ThreadTimes`]) uses,
    /// so simulated and measured `P_IMB` share one definition.
    pub fn median_thread_seconds(&self) -> f64 {
        spmv_telemetry::median(&self.thread_seconds)
    }

    /// Thread imbalance ratio `max / median`.
    pub fn imbalance(&self) -> f64 {
        let med = self.median_thread_seconds();
        if med > 0.0 {
            self.seconds / med
        } else {
            1.0
        }
    }
}

/// The cost model for one machine.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineModel,
}

/// Per-row cost ingredients for a specific spec.
struct RowCosts {
    cycles: Vec<f64>,
    bytes: Vec<f64>,
    stall_ns: Vec<f64>,
}

impl CostModel {
    /// Creates a cost model for `machine`.
    pub fn new(machine: MachineModel) -> CostModel {
        CostModel { machine }
    }

    /// The modelled machine.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Simulates one SpMV execution of `spec` over `profile`.
    pub fn simulate(&self, profile: &MatrixProfile, spec: SimSpec) -> SimResult {
        let m = &self.machine;
        let nthreads = m.total_threads();
        let v = spec.variant;
        let vectorize = v.contains(Optimization::Vectorize);
        let prefetch = v.contains(Optimization::Prefetch);
        let sliced = v.contains(Optimization::SlicedEll) && !spec.no_index;
        let blocked = v.contains(Optimization::RegisterBlock) && !spec.no_index && !sliced;
        let compress = v.contains(Optimization::Compress) && !spec.no_index && !blocked && !sliced;
        let guided = v.contains(Optimization::AutoSchedule);
        let decompose_threshold = if v.contains(Optimization::Decompose) {
            auto_threshold(&profile.row_nnz, profile.nnz, nthreads)
        } else {
            None
        };

        let costs = self.row_costs(profile, vectorize, prefetch, compress, blocked, sliced, &spec);

        // Split rows into the per-thread assignment.
        let mut cycles = vec![0.0f64; nthreads];
        let mut bytes = vec![0.0f64; nthreads];
        let mut stall = vec![0.0f64; nthreads];

        let is_long: Vec<bool> = match decompose_threshold {
            Some(t) => profile.row_nnz.iter().map(|&k| k as usize > t).collect(),
            None => vec![false; profile.nrows],
        };

        // Long rows: every thread takes an equal element share.
        let mut any_long = false;
        for (i, &long) in is_long.iter().enumerate() {
            if long {
                any_long = true;
                let share = 1.0 / nthreads as f64;
                for t in 0..nthreads {
                    cycles[t] += costs.cycles[i] * share;
                    bytes[t] += costs.bytes[i] * share;
                    stall[t] += costs.stall_ns[i] * share;
                }
            }
        }
        if any_long {
            for c in cycles.iter_mut() {
                *c += LONG_PHASE_BARRIER_CYCLES;
            }
        }

        // Short rows: schedule-dependent assignment.
        if guided {
            self.assign_guided(profile, &costs, &is_long, &mut cycles, &mut bytes, &mut stall);
        } else {
            // Contiguous partitions over the short rows: nnz-balanced
            // (the paper's baseline) or equal-row-count (MKL-like).
            let mut short_rowptr = Vec::with_capacity(profile.nrows + 1);
            short_rowptr.push(0usize);
            let mut acc = 0usize;
            for (i, &long) in is_long.iter().enumerate() {
                if !long {
                    acc += if spec.equal_rows { 1 } else { profile.row_nnz[i] as usize };
                }
                short_rowptr.push(acc);
            }
            for (t, part) in partition_rows_by_nnz(&short_rowptr, nthreads).into_iter().enumerate()
            {
                for i in part {
                    if !is_long[i] {
                        cycles[t] += costs.cycles[i];
                        bytes[t] += costs.bytes[i];
                        stall[t] += costs.stall_ns[i];
                    }
                }
            }
        }

        self.combine(profile, cycles, bytes, stall)
    }

    /// Greedy least-loaded chunk assignment (guided/`auto` analogue).
    fn assign_guided(
        &self,
        profile: &MatrixProfile,
        costs: &RowCosts,
        is_long: &[bool],
        cycles: &mut [f64],
        bytes: &mut [f64],
        stall: &mut [f64],
    ) {
        let nthreads = cycles.len();
        let chunk = (profile.nrows / (nthreads * 32)).max(1);
        // Proxy: convert bytes to cycles at the per-thread bandwidth
        // cap so memory-heavy chunks count as heavy.
        let thread_rate = self.thread_cycle_rate();
        let cap = self.per_thread_bw_cap();
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> =
            (0..nthreads).map(|t| (Reverse(0u64), t)).collect();
        let mut i = 0;
        while i < profile.nrows {
            let end = (i + chunk).min(profile.nrows);
            let mut c = 0.0;
            let mut b = 0.0;
            let mut s = 0.0;
            // Indexed loop: `r` addresses the three cost arrays and
            // `is_long` together.
            #[allow(clippy::needless_range_loop)]
            for r in i..end {
                if !is_long[r] {
                    c += costs.cycles[r];
                    b += costs.bytes[r];
                    s += costs.stall_ns[r];
                }
            }
            let (Reverse(load), t) = heap.pop().expect("heap has nthreads entries");
            cycles[t] += c;
            bytes[t] += b;
            stall[t] += s;
            let proxy_ns = (c / thread_rate + b / cap) * 1e9 + s;
            heap.push((Reverse(load + proxy_ns as u64), t));
            i = end;
        }
    }

    /// Per-row cycles / bytes / stall for a spec.
    #[allow(clippy::too_many_arguments)]
    fn row_costs(
        &self,
        profile: &MatrixProfile,
        vectorize: bool,
        prefetch: bool,
        compress: bool,
        blocked: bool,
        sliced: bool,
        spec: &SimSpec,
    ) -> RowCosts {
        let m = &self.machine;
        let lanes = m.simd_lanes as f64;
        // Register blocking amortises indexing over dense tiles but
        // pays padding work/traffic proportional to the fill ratio;
        // SELL-C-σ pays chunk padding instead.
        let fill = if blocked {
            profile.bcsr_fill()
        } else if sliced {
            profile.sell_fill()
        } else {
            1.0
        };

        // Cycles per nonzero.
        let mut cyc_elem = if spec.no_index {
            // No index load, unit-stride x: pure streaming FMA.
            if vectorize {
                (SCALAR_CYCLES_PER_NNZ / lanes).max(0.5)
            } else {
                SCALAR_CYCLES_PER_NNZ - 1.0
            }
        } else if sliced {
            // Lockstep SIMD over sorted chunks: full vector issue with
            // gathers, every padded slot computes.
            (SCALAR_CYCLES_PER_NNZ * GATHER_FACTOR / lanes).max(0.75) * fill
        } else if blocked {
            // Unrolled dense tiles: no per-element index load, no
            // gather (block columns are contiguous), but every padded
            // slot computes.
            let per_slot = if vectorize {
                (SCALAR_CYCLES_PER_NNZ / lanes).max(0.5)
            } else {
                SCALAR_CYCLES_PER_NNZ - 1.0
            };
            per_slot * fill
        } else if vectorize {
            (SCALAR_CYCLES_PER_NNZ * GATHER_FACTOR / lanes).max(0.75)
        } else {
            SCALAR_CYCLES_PER_NNZ
        };
        if compress {
            cyc_elem += if vectorize { DELTA_DECODE_CYCLES / 2.0 } else { DELTA_DECODE_CYCLES };
        }
        if prefetch {
            cyc_elem += PREFETCH_CYCLES_PER_NNZ;
        }
        let mut loop_cyc = m.loop_overhead_cycles * if vectorize { 0.75 } else { 1.0 };
        if sliced {
            // One loop per C-row chunk instead of per row.
            loop_cyc /= 8.0;
        }

        // Index bytes per nonzero, and value bytes per nonzero
        // (padding slots of BCSR stream through memory too).
        let (idx_bytes, val_bytes) = if spec.no_index {
            (0.0, 8.0)
        } else if sliced {
            (4.0 * fill, 8.0 * fill)
        } else if blocked {
            let idx = if profile.nnz == 0 {
                4.0
            } else {
                4.0 * profile.bcsr2x2_blocks as f64 / profile.nnz as f64
            };
            (idx, 8.0 * fill)
        } else if compress {
            (profile.delta_idx_bytes_per_nnz, 8.0)
        } else {
            (4.0, 8.0)
        };

        // Latency coverage.
        let seq_cov = if prefetch {
            m.hw_prefetch_coverage.max(SW_PREFETCH_COVERAGE)
        } else {
            m.hw_prefetch_coverage
        };
        let rand_cov = if prefetch { SW_PREFETCH_COVERAGE } else { 0.0 };
        let regular = spec.regular_x || spec.no_index;

        let n = profile.nrows;
        let mut cycles = Vec::with_capacity(n);
        let mut bytes = Vec::with_capacity(n);
        let mut stall_ns = Vec::with_capacity(n);
        let line = m.line_bytes as f64;
        for i in 0..n {
            let k = f64::from(profile.row_nnz[i]);
            cycles.push(k * cyc_elem + loop_cyc);
            let mut b = k * (val_bytes + idx_bytes) + 16.0; // values+idx, rowptr+y
            let mut s = 0.0;
            if regular {
                b += 8.0; // x[i], one word per row
            } else {
                let mm = &profile.row_misses[i];
                b += f64::from(mm.mem()) * line;
                s += (f64::from(mm.seq_llc) * m.llc_latency_ns
                    + f64::from(mm.seq_mem) * m.mem_latency_ns)
                    * (1.0 - seq_cov)
                    / m.mlp;
                s += (f64::from(mm.rand_llc) * m.llc_latency_ns
                    + f64::from(mm.rand_mem) * m.mem_latency_ns)
                    * (1.0 - rand_cov)
                    / m.mlp;
            }
            bytes.push(b);
            stall_ns.push(s);
        }
        RowCosts { cycles, bytes, stall_ns }
    }

    /// Cycles per second available to one thread (SMT-shared issue).
    fn thread_cycle_rate(&self) -> f64 {
        self.machine.freq_ghz * 1e9 / self.machine.threads_per_core as f64
    }

    /// Bandwidth cap for a single thread, bytes/s: twice its core's
    /// fair share of the socket bandwidth. When a straggler thread
    /// runs alone its SMT siblings are idle, so the whole core's
    /// request stream is available to it.
    fn per_thread_bw_cap(&self) -> f64 {
        2.0 * self.machine.bw_main_gbps * 1e9 / self.machine.cores as f64
    }

    /// Combines per-thread ingredients into the final result.
    fn combine(
        &self,
        profile: &MatrixProfile,
        cycles: Vec<f64>,
        bytes: Vec<f64>,
        stall_ns: Vec<f64>,
    ) -> SimResult {
        let m = &self.machine;
        let total_bytes: f64 = bytes.iter().sum();
        let bw = m.bandwidth_for_working_set(profile.working_set_bytes) * 1e9;
        let cap = self.per_thread_bw_cap().min(bw);
        let mem_s = drain_times(&bytes, bw, cap);
        let rate = self.thread_cycle_rate();
        let thread_seconds: Vec<f64> = cycles
            .iter()
            .zip(&mem_s)
            .zip(&stall_ns)
            .map(|((&c, &ms), &s)| (c / rate).max(ms) + s * 1e-9)
            .collect();
        let makespan = thread_seconds.iter().copied().fold(0.0, f64::max).max(1e-12);
        SimResult {
            gflops: 2.0 * profile.nnz as f64 / makespan / 1e9,
            seconds: makespan,
            thread_seconds,
            traffic_bytes: total_bytes,
        }
    }
}

/// Long-row threshold mirroring
/// [`spmv_sparse::DecomposedCsr::auto_threshold`]: `None` when the
/// matrix has no qualifying rows.
pub fn auto_threshold(row_nnz: &[u32], nnz: usize, nthreads: usize) -> Option<usize> {
    let n = row_nnz.len();
    if n == 0 || nnz == 0 {
        return None;
    }
    let avg = nnz as f64 / n as f64;
    let share = nnz as f64 / nthreads.max(1) as f64;
    let threshold = ((avg * 16.0).max(share * 0.2).ceil() as usize).max(1);
    row_nnz.iter().any(|&k| k as usize > threshold).then_some(threshold)
}

/// Bandwidth drain model: all active threads are served at the same
/// rate (`min(cap, total/active)`); as a thread's demand completes it
/// drops out and the survivors speed up. Returns per-thread memory
/// times.
pub fn drain_times(demands: &[f64], total_rate: f64, cap: f64) -> Vec<f64> {
    let n = demands.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("finite demands"));
    let mut out = vec![0.0f64; n];
    let mut t = 0.0f64;
    let mut served = 0.0f64;
    for (k, &i) in order.iter().enumerate() {
        let active = (n - k) as f64;
        let rate = cap.min(total_rate / active).max(1.0);
        let need = (demands[i] - served).max(0.0);
        let dt = need / rate;
        t += dt;
        served = demands[i].max(served);
        out[i] = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    fn profile(a: &spmv_sparse::Csr, m: &MachineModel) -> MatrixProfile {
        MatrixProfile::analyze(a, m)
    }

    #[test]
    fn drain_balanced_equals_aggregate() {
        let d = vec![100.0; 4];
        let out = drain_times(&d, 100.0, 1000.0);
        for &t in &out {
            assert!((t - 4.0).abs() < 1e-9, "{out:?}");
        }
    }

    #[test]
    fn drain_skewed_respects_cap() {
        // One heavy thread: after the light ones drain, it is capped.
        let d = vec![10.0, 10.0, 10.0, 1000.0];
        let out = drain_times(&d, 100.0, 50.0);
        // Light threads: served at 25 B/s -> 0.4 s.
        assert!((out[0] - 0.4).abs() < 1e-9);
        // Heavy: 10 bytes in first phase, then 990 at cap 50 -> 0.4 + 19.8
        assert!((out[3] - 20.2).abs() < 1e-6, "{out:?}");
    }

    #[test]
    fn drain_empty_and_zero() {
        assert!(drain_times(&[], 10.0, 10.0).is_empty());
        let out = drain_times(&[0.0, 0.0], 10.0, 10.0);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn regular_matrix_is_bandwidth_bound_on_knc() {
        let a = gen::banded(30_000, 40, 0.9, 3).unwrap();
        let model = CostModel::new(MachineModel::knc());
        let p = profile(&a, model.machine());
        let base = model.simulate(&p, SimSpec::baseline());
        // Bandwidth-bound: makespan ~ traffic / B within 2x.
        let bw_time = base.traffic_bytes / (128e9);
        assert!(base.seconds < 2.5 * bw_time, "{} vs {}", base.seconds, bw_time);
        assert!(base.gflops > 1.0 && base.gflops < 60.0, "{}", base.gflops);
        // Eliminating irregularity gains almost nothing.
        let ml = model.simulate(&p, SimSpec { regular_x: true, ..SimSpec::baseline() });
        assert!(ml.gflops / base.gflops < 1.15, "{} vs {}", ml.gflops, base.gflops);
    }

    #[test]
    fn irregular_matrix_is_latency_bound_on_knc_but_not_broadwell() {
        let a = gen::random_uniform(120_000, 12, 7).unwrap();
        let knc = CostModel::new(MachineModel::knc());
        let p = profile(&a, knc.machine());
        let base = knc.simulate(&p, SimSpec::baseline());
        let regular = knc.simulate(&p, SimSpec { regular_x: true, ..SimSpec::baseline() });
        let gain_knc = regular.gflops / base.gflops;
        assert!(gain_knc > 1.5, "KNC ML gain {gain_knc}");

        let bdw = CostModel::new(MachineModel::broadwell());
        let pb = profile(&a, bdw.machine());
        let base_b = bdw.simulate(&pb, SimSpec::baseline());
        let regular_b = bdw.simulate(&pb, SimSpec { regular_x: true, ..SimSpec::baseline() });
        let gain_bdw = regular_b.gflops / base_b.gflops;
        assert!(gain_bdw < gain_knc, "BDW {gain_bdw} vs KNC {gain_knc}");
    }

    #[test]
    fn prefetch_helps_latency_bound_matrices() {
        let a = gen::random_uniform(120_000, 12, 7).unwrap();
        let model = CostModel::new(MachineModel::knc());
        let p = profile(&a, model.machine());
        let base = model.simulate(&p, SimSpec::baseline());
        let pref =
            model.simulate(&p, SimSpec::variant(KernelVariant::single(Optimization::Prefetch)));
        assert!(pref.gflops > 1.3 * base.gflops, "{} vs {}", pref.gflops, base.gflops);
    }

    #[test]
    fn dense_row_matrix_shows_imbalance_and_decomposition_fixes_it() {
        let a = gen::circuit(150_000, 4, 0.3, 6, 9).unwrap();
        let model = CostModel::new(MachineModel::knc());
        let p = profile(&a, model.machine());
        let base = model.simulate(&p, SimSpec::baseline());
        assert!(base.imbalance() > 3.0, "imbalance {}", base.imbalance());
        let dec =
            model.simulate(&p, SimSpec::variant(KernelVariant::single(Optimization::Decompose)));
        assert!(dec.gflops > 2.0 * base.gflops, "{} vs {}", dec.gflops, base.gflops);
        assert!(dec.imbalance() < base.imbalance());
    }

    #[test]
    fn vectorization_helps_compute_bound_not_bandwidth_bound() {
        let model = CostModel::new(MachineModel::knc());
        // Bandwidth-bound large banded matrix: little gain.
        let a = gen::banded(60_000, 40, 0.9, 3).unwrap();
        let p = profile(&a, model.machine());
        let base = model.simulate(&p, SimSpec::baseline());
        let vec =
            model.simulate(&p, SimSpec::variant(KernelVariant::single(Optimization::Vectorize)));
        assert!(vec.gflops / base.gflops < 1.3, "{}", vec.gflops / base.gflops);

        // Dense-row circuit: the serialised thread is compute-bound,
        // vectorization shortens it.
        let c = gen::circuit(150_000, 4, 0.3, 6, 9).unwrap();
        let pc = profile(&c, model.machine());
        let cb = model.simulate(&pc, SimSpec::baseline());
        let cv =
            model.simulate(&pc, SimSpec::variant(KernelVariant::single(Optimization::Vectorize)));
        assert!(cv.gflops > 1.2 * cb.gflops, "{} vs {}", cv.gflops, cb.gflops);
    }

    #[test]
    fn compression_reduces_traffic() {
        let a = gen::banded(60_000, 40, 0.9, 3).unwrap();
        let model = CostModel::new(MachineModel::knc());
        let p = profile(&a, model.machine());
        let base = model.simulate(&p, SimSpec::baseline());
        let comp =
            model.simulate(&p, SimSpec::variant(KernelVariant::single(Optimization::Compress)));
        assert!(comp.traffic_bytes < base.traffic_bytes);
        assert!(comp.gflops > base.gflops);
    }

    #[test]
    fn simd_width_matters_for_no_index_bound() {
        let a = gen::block_dense(4_000, 200, 1, 5).unwrap();
        let knc = CostModel::new(MachineModel::knc());
        let p = profile(&a, knc.machine());
        let cmp_scalar = knc.simulate(&p, SimSpec { no_index: true, ..SimSpec::baseline() });
        let cmp_vec = knc.simulate(
            &p,
            SimSpec {
                no_index: true,
                ..SimSpec::variant(KernelVariant::single(Optimization::Vectorize))
            },
        );
        assert!(cmp_vec.gflops >= cmp_scalar.gflops);
    }

    #[test]
    fn guided_schedule_covers_all_work() {
        let a = gen::powerlaw(50_000, 8, 1.8, 3).unwrap();
        let model = CostModel::new(MachineModel::knl());
        let p = profile(&a, model.machine());
        let stat = model.simulate(&p, SimSpec::baseline());
        let auto =
            model.simulate(&p, SimSpec::variant(KernelVariant::single(Optimization::AutoSchedule)));
        // Same total traffic either way (same rows computed).
        assert!((stat.traffic_bytes - auto.traffic_bytes).abs() < 1e-6 * stat.traffic_bytes);
    }

    #[test]
    fn auto_threshold_mirrors_sparse_crate() {
        let a = gen::circuit(50_000, 3, 0.4, 5, 3).unwrap();
        let row_nnz: Vec<u32> = (0..a.nrows()).map(|i| a.row_nnz(i) as u32).collect();
        let ours = auto_threshold(&row_nnz, a.nnz(), 228);
        let theirs = spmv_sparse::DecomposedCsr::auto_threshold(&a, 228);
        assert_eq!(ours, theirs);
    }

    #[test]
    fn register_blocking_pays_off_only_when_clustered() {
        let model = CostModel::new(MachineModel::knc());
        let rb = KernelVariant::single(Optimization::RegisterBlock);

        // Clustered dense tiles: low fill, index traffic amortised.
        let clustered = gen::block_dense(30_000, 64, 1, 5).unwrap();
        let pc = profile(&clustered, model.machine());
        assert!(pc.bcsr_fill() < 1.3, "fill {}", pc.bcsr_fill());
        let base_c = model.simulate(&pc, SimSpec::baseline()).gflops;
        let rb_c = model.simulate(&pc, SimSpec::variant(rb)).gflops;
        assert!(rb_c > base_c, "clustered: {rb_c} vs {base_c}");

        // Scattered: fill explodes, blocking hurts.
        let scattered = gen::random_uniform(60_000, 8, 3).unwrap();
        let ps = profile(&scattered, model.machine());
        assert!(ps.bcsr_fill() > 2.0, "fill {}", ps.bcsr_fill());
        let base_s = model.simulate(&ps, SimSpec::baseline()).gflops;
        let rb_s = model.simulate(&ps, SimSpec::variant(rb)).gflops;
        assert!(rb_s < base_s, "scattered: {rb_s} vs {base_s}");
    }

    #[test]
    fn sliced_ell_amortises_loop_overhead_on_short_rows() {
        // Very short rows on an in-order core: per-row loop overhead
        // dominates the compute side; SELL-C-s amortises it across
        // 8-row chunks. Bandwidth is cranked up so the compute effect
        // is observable (on the stock KNC both kernels sit on the
        // bandwidth floor and tie).
        let mut m = MachineModel::knc();
        m.bw_main_gbps = 10_000.0;
        m.bw_llc_gbps = 10_000.0;
        let model = CostModel::new(m);
        let a = gen::banded(200_000, 2, 1.0, 3).unwrap(); // ~5 nnz/row
        let p = profile(&a, model.machine());
        assert!(p.sell_fill() < 1.5, "fill {}", p.sell_fill());
        let base = model.simulate(&p, SimSpec::baseline()).gflops;
        let sell = model
            .simulate(&p, SimSpec::variant(KernelVariant::single(Optimization::SlicedEll)))
            .gflops;
        assert!(sell > 1.5 * base, "{sell} vs {base}");
        // On the stock (bandwidth-limited) machine it must not hurt.
        let stock = CostModel::new(MachineModel::knc());
        let ps = profile(&a, stock.machine());
        let base_s = stock.simulate(&ps, SimSpec::baseline()).gflops;
        let sell_s = stock
            .simulate(&ps, SimSpec::variant(KernelVariant::single(Optimization::SlicedEll)))
            .gflops;
        assert!(sell_s > 0.95 * base_s, "{sell_s} vs {base_s}");
    }

    #[test]
    fn median_and_imbalance() {
        let r = SimResult {
            thread_seconds: vec![1.0, 1.0, 4.0],
            seconds: 4.0,
            gflops: 1.0,
            traffic_bytes: 0.0,
        };
        assert_eq!(r.median_thread_seconds(), 1.0);
        assert_eq!(r.imbalance(), 4.0);
    }
}
