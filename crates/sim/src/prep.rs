//! Preprocessing / setup cost estimates (the `t_pre` of the paper's
//! Table 4 amortization study).
//!
//! Every optimizer pays some combination of:
//!
//! * **format conversion** — delta compression, long-row
//!   decomposition (bandwidth-bound copies plus per-nonzero work);
//! * **feature extraction** — an `O(N)` or `O(NNZ)` sweep;
//! * **online profiling** — the micro-benchmark runs behind the
//!   profile-guided classifier (baseline, regularised-`x` and
//!   no-index kernels, each executed `PROFILE_REPS` times plus a
//!   `colind` rewrite for the `P_ML` benchmark);
//! * **runtime code generation** — a fixed JIT cost per distinct
//!   kernel built.

use spmv_kernels::variant::{KernelVariant, Optimization};
use spmv_machine::MachineModel;

use crate::cost::{CostModel, SimSpec};
use crate::profile::MatrixProfile;

/// Repetitions of each micro-benchmark in the profiling phase (the
/// paper times 64 SpMV operations; a profiling run can afford fewer).
pub const PROFILE_REPS: usize = 16;

/// Fixed JIT code-generation cost per built kernel, seconds.
pub const CODEGEN_SECONDS: f64 = 0.010;

/// Parallel efficiency assumed for preprocessing passes (conversions
/// do not scale as well as SpMV itself).
const PREP_EFFICIENCY: f64 = 0.5;

/// Preprocessing cost model for one machine.
#[derive(Debug, Clone)]
pub struct PrepModel {
    machine: MachineModel,
}

impl PrepModel {
    /// Creates a preprocessing model for `machine`.
    pub fn new(machine: MachineModel) -> PrepModel {
        PrepModel { machine }
    }

    /// Seconds for a parallel streaming pass that reads + writes the
    /// given bytes and spends `cycles_per_item * items` of compute.
    fn pass_seconds(&self, bytes: f64, items: f64, cycles_per_item: f64) -> f64 {
        let m = &self.machine;
        let bw = m.bw_main_gbps * 1e9 * PREP_EFFICIENCY;
        let compute = m.cores as f64 * m.freq_ghz * 1e9 * PREP_EFFICIENCY;
        (bytes / bw).max(items * cycles_per_item / compute)
    }

    /// Cost of converting CSR to delta-compressed CSR.
    pub fn compress_seconds(&self, p: &MatrixProfile) -> f64 {
        self.pass_seconds((p.csr_bytes + p.delta_bytes) as f64, p.nnz as f64, 3.0)
    }

    /// Cost of splitting the matrix into short + long parts.
    pub fn decompose_seconds(&self, p: &MatrixProfile) -> f64 {
        self.pass_seconds(2.0 * p.csr_bytes as f64, p.nnz as f64, 1.0)
    }

    /// Cost of extracting structural features. `per_nnz` selects the
    /// `O(NNZ)` feature set (vs the cheaper `O(N)` one).
    pub fn feature_extract_seconds(&self, p: &MatrixProfile, per_nnz: bool) -> f64 {
        let row_pass = self.pass_seconds(16.0 * p.nrows as f64, p.nrows as f64, 8.0);
        if per_nnz {
            row_pass + self.pass_seconds(4.0 * p.nnz as f64, p.nnz as f64, 2.0)
        } else {
            row_pass
        }
    }

    /// Cost of the profile-guided classifier's online phase: the
    /// baseline, regular-`x` and no-index micro-benchmarks, each run
    /// [`PROFILE_REPS`] times, plus the `colind` rewrite that builds
    /// the regular-`x` kernel input.
    pub fn profiling_seconds(&self, model: &CostModel, p: &MatrixProfile) -> f64 {
        let base = model.simulate(p, SimSpec::baseline()).seconds;
        let ml = model.simulate(p, SimSpec { regular_x: true, ..SimSpec::baseline() }).seconds;
        let cmp = model.simulate(p, SimSpec { no_index: true, ..SimSpec::baseline() }).seconds;
        let colind_rewrite = self.pass_seconds(8.0 * p.nnz as f64, p.nnz as f64, 1.0);
        PROFILE_REPS as f64 * (base + ml + cmp) + colind_rewrite
    }

    /// Conversion + code-generation cost of building one variant.
    pub fn variant_seconds(&self, p: &MatrixProfile, variant: KernelVariant) -> f64 {
        let mut t = CODEGEN_SECONDS;
        if variant.contains(Optimization::Decompose) {
            t += self.decompose_seconds(p);
        }
        if variant.contains(Optimization::Compress) {
            t += self.compress_seconds(p);
        }
        t
    }

    /// Total cost of a trivial optimizer that builds and measures
    /// every variant in `variants`, running each `reps` times.
    pub fn trivial_sweep_seconds(
        &self,
        model: &CostModel,
        p: &MatrixProfile,
        variants: &[KernelVariant],
        reps: usize,
    ) -> f64 {
        variants
            .iter()
            .map(|&v| {
                let build = self.variant_seconds(p, v);
                let run = model.simulate(p, SimSpec::variant(v)).seconds;
                build + reps as f64 * run
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    fn setup() -> (CostModel, PrepModel, MatrixProfile) {
        let machine = MachineModel::knl();
        let model = CostModel::new(machine.clone());
        let a = gen::banded(30_000, 20, 0.9, 3).unwrap();
        let p = MatrixProfile::analyze(&a, &machine);
        (model, PrepModel::new(machine), p)
    }

    #[test]
    fn conversions_cost_more_than_codegen_alone() {
        let (_, prep, p) = setup();
        let plain = prep.variant_seconds(&p, KernelVariant::single(Optimization::Vectorize));
        let comp = prep.variant_seconds(&p, KernelVariant::single(Optimization::Compress));
        let dec = prep.variant_seconds(&p, KernelVariant::single(Optimization::Decompose));
        assert!((plain - CODEGEN_SECONDS).abs() < 1e-12);
        assert!(comp > plain);
        assert!(dec > plain);
    }

    #[test]
    fn nnz_features_cost_more_than_row_features() {
        let (_, prep, p) = setup();
        assert!(prep.feature_extract_seconds(&p, true) > prep.feature_extract_seconds(&p, false));
    }

    #[test]
    fn profiling_costs_many_spmv_runs() {
        let (model, prep, p) = setup();
        let one_spmv = model.simulate(&p, SimSpec::baseline()).seconds;
        let prof = prep.profiling_seconds(&model, &p);
        assert!(prof > 2.0 * PROFILE_REPS as f64 * one_spmv, "{prof} vs {one_spmv}");
    }

    #[test]
    fn trivial_combined_costs_more_than_single_sweep() {
        let (model, prep, p) = setup();
        let singles = prep.trivial_sweep_seconds(&model, &p, &KernelVariant::all_singles(), 64);
        let combined =
            prep.trivial_sweep_seconds(&model, &p, &KernelVariant::singles_and_pairs(), 64);
        assert!(combined > 2.0 * singles);
    }

    #[test]
    fn feature_extraction_is_far_cheaper_than_profiling() {
        // The core claim behind the feature-guided classifier's win in
        // Table 4.
        let (model, prep, p) = setup();
        let feat = prep.feature_extract_seconds(&p, true);
        let prof = prep.profiling_seconds(&model, &p);
        assert!(prof > 10.0 * feat, "profiling {prof} vs features {feat}");
    }
}
