//! # spmv-sim
//!
//! Deterministic SpMV performance simulator — the stand-in for the
//! paper's Xeon Phi / Broadwell hardware.
//!
//! The paper's classifier logic consumes only *relative* performance
//! numbers: the baseline `P_CSR` against per-class upper bounds
//! (`P_MB`, `P_ML`, `P_IMB`, `P_CMP`, `P_peak`, §III-B) and the
//! speedups of candidate optimizations. This crate produces those
//! numbers from first principles:
//!
//! 1. [`profile::MatrixProfile`] — one structural analysis pass per
//!    (matrix, machine): per-row nonzeros plus a warm, set-associative
//!    LLC simulation of the `x[colind[j]]` stream that separates
//!    *sequential* (hardware-prefetchable) from *random* misses.
//! 2. [`cost::CostModel`] — lowers a
//!    [`KernelVariant`](spmv_kernels::variant::KernelVariant) onto
//!    per-thread execution times using a max(compute, bandwidth) +
//!    latency-stall model with bandwidth drain sharing, honouring the
//!    scheduling policy (static nnz-balanced, guided list-scheduling,
//!    two-phase decomposed).
//! 3. [`bounds`] — runs the paper's §III-B modified micro-kernels
//!    inside the model to produce the per-class bound profile.
//! 4. [`prep`] — estimates preprocessing/setup costs (format
//!    conversion, feature extraction, micro-benchmark profiling, JIT
//!    code generation) for the Table 4 amortization study.
//!
//! The model is calibrated qualitatively, not absolutely: DESIGN.md
//! documents which published phenomena it must (and does) reproduce.

pub mod bounds;
pub mod cost;
pub mod prep;
pub mod profile;

pub use bounds::{collect_bounds, Bounds};
pub use cost::{CostModel, SimResult};
pub use profile::MatrixProfile;
