//! Machine models with the paper's Table 1 platform presets.
//!
//! A [`MachineModel`] is a flat record of the architectural parameters
//! that the paper's analysis identifies as the drivers of SpMV
//! behaviour: parallel width (cores × SMT), SIMD width, the cache
//! hierarchy, sustainable STREAM bandwidth from main memory and from
//! the last-level cache, the main-memory access latency, and a few
//! micro-architectural scalars (loop overhead, hardware-prefetch
//! coverage) that the `spmv-sim` cost model consumes.

/// Architectural description of a target platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Human-readable platform name (e.g. `"KNC"`).
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core actually used by SpMV (the paper
    /// runs 4/core on the Phis, 2/core on Broadwell).
    pub threads_per_core: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// f64 lanes of the widest SIMD unit (8 for 512-bit, 4 for AVX2).
    pub simd_lanes: usize,
    /// L1 data cache per core, bytes.
    pub l1d_bytes: usize,
    /// L2 cache capacity in bytes. On the Phis this is the aggregate
    /// (distributed) L2 — the platform's last-level cache.
    pub l2_bytes: usize,
    /// L3 capacity in bytes, 0 when the platform has no L3.
    pub l3_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// STREAM-triad sustainable bandwidth from main memory, GB/s
    /// (paper Table 1 "STREAM triad main").
    pub bw_main_gbps: f64,
    /// STREAM-triad bandwidth for LLC-resident working sets, GB/s
    /// (paper Table 1 "STREAM triad llc").
    pub bw_llc_gbps: f64,
    /// Average main-memory access latency in nanoseconds. The paper
    /// singles this out: Phi miss latency is "an order of magnitude
    /// higher compared to multi-cores".
    pub mem_latency_ns: f64,
    /// Double-precision FLOPs per cycle per core without SIMD
    /// (scalar FMA issue).
    pub scalar_flops_per_cycle: f64,
    /// Fraction of *regular* (streaming) access latency hidden by the
    /// hardware prefetcher (0..1). Broadwell ≈ 1, KNC has only a weak
    /// L2 prefetcher.
    pub hw_prefetch_coverage: f64,
    /// Per-row loop bookkeeping overhead in cycles. In-order cores
    /// (KNC) pay much more here, which is what exposes the paper's
    /// "short rows / loop overhead" CMP sub-case.
    pub loop_overhead_cycles: f64,
    /// Memory-level parallelism per thread: how many outstanding
    /// random misses a thread overlaps on average. In-order KNC
    /// threads barely overlap (≈1), Broadwell's out-of-order window
    /// overlaps several — this ratio is what makes the same irregular
    /// matrix ML-bound on the Phi but not on Broadwell.
    pub mlp: f64,
    /// Latency (ns) of a private-cache miss that is satisfied by the
    /// aggregate last-level cache. On the Phis this is a *remote L2 /
    /// directory* access over the ring/mesh — nearly as expensive as
    /// DRAM — while on Broadwell an L3 hit is cheap. This asymmetry is
    /// the paper's "very expensive (an order of magnitude higher
    /// compared to multi-cores) cache miss latency".
    pub llc_latency_ns: f64,
}

impl MachineModel {
    /// Total hardware threads used for SpMV.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Last-level cache capacity in bytes (L3 when present, else the
    /// aggregate L2).
    #[inline]
    pub fn llc_bytes(&self) -> usize {
        if self.l3_bytes > 0 {
            self.l3_bytes
        } else {
            self.l2_bytes
        }
    }

    /// Matrix elements (f64) per cache line — the paper's prefetch
    /// distance and the `misses_i` feature threshold.
    #[inline]
    pub fn line_elems(&self) -> u32 {
        (self.line_bytes / std::mem::size_of::<f64>()) as u32
    }

    /// Per-core private cache capacity in bytes: the per-core L2 on
    /// platforms with an L3, or the per-core slice of the distributed
    /// aggregate L2 on the Phis. Misses out of this cache are what
    /// cost [`MachineModel::llc_latency_ns`] /
    /// [`MachineModel::mem_latency_ns`].
    pub fn private_cache_bytes(&self) -> usize {
        if self.l3_bytes > 0 {
            self.l2_bytes
        } else {
            (self.l2_bytes / self.cores.max(1)).max(1024)
        }
    }

    /// Peak double-precision GFLOP/s with full SIMD+FMA issue.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.scalar_flops_per_cycle * self.simd_lanes as f64
    }

    /// Sustainable bandwidth (GB/s) for a working set of `bytes`:
    /// LLC bandwidth when it fits, main-memory bandwidth otherwise.
    /// This is the paper's footnote 2: "we adjust the bandwidth
    /// upwards for matrices that fit in the system's cache hierarchy".
    pub fn bandwidth_for_working_set(&self, bytes: usize) -> f64 {
        if bytes <= self.llc_bytes() {
            self.bw_llc_gbps
        } else {
            self.bw_main_gbps
        }
    }

    /// Intel Xeon Phi 3120P "Knights Corner" (paper Table 1).
    ///
    /// 57 cores × 4 threads @ 1.10 GHz, 512-bit SIMD, 30 MiB
    /// aggregate L2, STREAM 128 / 140 GB/s, in-order cores with high
    /// miss latency and essentially no useful hardware prefetch for
    /// irregular streams.
    pub fn knc() -> MachineModel {
        MachineModel {
            name: "KNC".into(),
            cores: 57,
            threads_per_core: 4,
            freq_ghz: 1.10,
            simd_lanes: 8,
            l1d_bytes: 32 << 10,
            l2_bytes: 30 << 20,
            l3_bytes: 0,
            line_bytes: 64,
            bw_main_gbps: 128.0,
            bw_llc_gbps: 140.0,
            mem_latency_ns: 300.0,
            scalar_flops_per_cycle: 2.0,
            hw_prefetch_coverage: 0.55,
            loop_overhead_cycles: 12.0,
            mlp: 1.2,
            llc_latency_ns: 250.0,
        }
    }

    /// Intel Xeon Phi 7250 "Knights Landing", flat mode, application
    /// allocated on MCDRAM/HBM (paper Table 1).
    pub fn knl() -> MachineModel {
        MachineModel {
            name: "KNL".into(),
            cores: 68,
            threads_per_core: 4,
            freq_ghz: 1.40,
            simd_lanes: 8,
            l1d_bytes: 32 << 10,
            l2_bytes: 34 << 20,
            l3_bytes: 0,
            line_bytes: 64,
            bw_main_gbps: 395.0,
            bw_llc_gbps: 570.0,
            mem_latency_ns: 170.0,
            scalar_flops_per_cycle: 2.0,
            hw_prefetch_coverage: 0.75,
            loop_overhead_cycles: 6.0,
            mlp: 2.5,
            llc_latency_ns: 140.0,
        }
    }

    /// Intel Xeon E5-2699 v4 "Broadwell" (paper Table 1).
    pub fn broadwell() -> MachineModel {
        MachineModel {
            name: "Broadwell".into(),
            cores: 22,
            threads_per_core: 2,
            freq_ghz: 2.20,
            simd_lanes: 4,
            l1d_bytes: 32 << 10,
            l2_bytes: 256 << 10,
            l3_bytes: 55 << 20,
            line_bytes: 64,
            bw_main_gbps: 60.0,
            bw_llc_gbps: 200.0,
            mem_latency_ns: 90.0,
            scalar_flops_per_cycle: 2.0,
            hw_prefetch_coverage: 0.95,
            loop_overhead_cycles: 2.0,
            mlp: 6.0,
            llc_latency_ns: 18.0,
        }
    }

    /// A model of the machine running this code, with conservative
    /// defaults; bandwidths can be calibrated with
    /// [`crate::stream::measure_triad`].
    pub fn host() -> MachineModel {
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        MachineModel {
            name: "Host".into(),
            cores,
            threads_per_core: 1,
            freq_ghz: 2.5,
            simd_lanes: 4,
            l1d_bytes: 32 << 10,
            l2_bytes: 512 << 10,
            l3_bytes: 8 << 20,
            line_bytes: 64,
            bw_main_gbps: 20.0,
            bw_llc_gbps: 80.0,
            mem_latency_ns: 100.0,
            scalar_flops_per_cycle: 2.0,
            hw_prefetch_coverage: 0.9,
            loop_overhead_cycles: 3.0,
            mlp: 4.0,
            llc_latency_ns: 15.0,
        }
    }

    /// All three paper platforms, in the order of the paper's figures.
    pub fn paper_platforms() -> Vec<MachineModel> {
        vec![Self::knc(), Self::knl(), Self::broadwell()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let knc = MachineModel::knc();
        assert_eq!(knc.cores, 57);
        assert_eq!(knc.total_threads(), 228);
        assert_eq!(knc.l2_bytes, 30 << 20);
        assert_eq!(knc.bw_main_gbps, 128.0);

        let knl = MachineModel::knl();
        assert_eq!(knl.cores, 68);
        assert_eq!(knl.total_threads(), 272);
        assert_eq!(knl.bw_main_gbps, 395.0);
        assert_eq!(knl.bw_llc_gbps, 570.0);

        let bdw = MachineModel::broadwell();
        assert_eq!(bdw.cores, 22);
        assert_eq!(bdw.total_threads(), 44);
        assert_eq!(bdw.l3_bytes, 55 << 20);
    }

    #[test]
    fn llc_selection() {
        assert_eq!(MachineModel::knc().llc_bytes(), 30 << 20);
        assert_eq!(MachineModel::broadwell().llc_bytes(), 55 << 20);
    }

    #[test]
    fn bandwidth_adjusts_for_cache_resident_sets() {
        let bdw = MachineModel::broadwell();
        assert_eq!(bdw.bandwidth_for_working_set(1 << 20), 200.0);
        assert_eq!(bdw.bandwidth_for_working_set(1 << 30), 60.0);
    }

    #[test]
    fn phi_latency_order_of_magnitude_above_broadwell() {
        // The paper's architectural claim that drives ML-class diversity.
        assert!(
            MachineModel::knc().mem_latency_ns >= 3.0 * MachineModel::broadwell().mem_latency_ns
        );
    }

    #[test]
    fn peak_flops_sane() {
        let knl = MachineModel::knl();
        // 68 * 1.4 * 2 * 8 = 1523.2 GF/s (DP, one VPU worth of FMA issue)
        assert!((knl.peak_gflops() - 1523.2).abs() < 1e-9);
    }

    #[test]
    fn line_elems_is_eight_for_64b_lines() {
        assert_eq!(MachineModel::knc().line_elems(), 8);
    }

    #[test]
    fn host_model_has_positive_parallelism() {
        assert!(MachineModel::host().total_threads() >= 1);
    }
}
