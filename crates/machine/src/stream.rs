//! STREAM-triad bandwidth microbenchmark.
//!
//! The paper's Table 1 reports STREAM triad bandwidth for main-memory
//! and LLC-resident working sets; those numbers anchor the `P_MB` and
//! `P_peak` bounds. For the three paper platforms the presets carry
//! the published values; for the machine actually running this code,
//! [`measure_triad`] produces a real measurement that can calibrate a
//! [`MachineModel::host`](crate::model::MachineModel::host) model.

use std::time::Instant;

use spmv_kernels::schedule::YPtr;
use spmv_kernels::ExecEngine;

/// Result of a triad measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriadResult {
    /// Best-of-reps sustainable bandwidth in GB/s.
    pub gbps: f64,
    /// Working-set size in bytes (3 arrays).
    pub working_set_bytes: usize,
    /// Repetitions executed.
    pub reps: usize,
}

/// Runs the STREAM triad `a[i] = b[i] + s * c[i]` in parallel over
/// `n` elements, `reps` times, and reports the best bandwidth
/// observed (STREAM convention). Traffic is counted as 3 arrays
/// (2 reads + 1 write, no write-allocate accounting), matching the
/// original benchmark.
///
/// Runs on the shared persistent worker pool
/// ([`ExecEngine::global`]) rather than spawning its own threads, so
/// repeated calibrations reuse one warm team and the measurement
/// excludes thread-creation noise.
///
/// # Panics
/// Panics if `n == 0` or `reps == 0`.
pub fn measure_triad(n: usize, reps: usize) -> TriadResult {
    assert!(n > 0 && reps > 0, "n and reps must be positive");
    let s = 3.0f64;
    let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let c: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 + 1.0).collect();
    let mut a = vec![0.0f64; n];

    let bytes_per_rep = 3 * n * std::mem::size_of::<f64>();
    let nthreads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
    let chunk = n.div_ceil(nthreads);
    let engine = ExecEngine::global(nthreads);
    let ap = YPtr(a.as_mut_ptr());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        engine.run(&|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            if lo < hi {
                // SAFETY: workers receive disjoint index ranges
                // ([t*chunk, (t+1)*chunk) clamped to n), and `a`
                // outlives the dispatch — the exclusive borrow is
                // alive while `run` blocks.
                let ac = unsafe { ap.subslice(lo, hi - lo) };
                for ((ai, bi), ci) in ac.iter_mut().zip(&b[lo..hi]).zip(&c[lo..hi]) {
                    *ai = bi + s * ci;
                }
            }
        });
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
    }
    // Keep the result observable so the loop cannot be optimized out.
    assert!(a[n / 2].is_finite());
    TriadResult { gbps: bytes_per_rep as f64 / best / 1e9, working_set_bytes: bytes_per_rep, reps }
}

/// Convenience wrapper: measures main-memory-sized (64 MiB working
/// set) and LLC-sized (2 MiB working set) triads and returns
/// `(main_gbps, llc_gbps)`. Intended for quick host calibration, not
/// rigorous benchmarking.
pub fn calibrate_host() -> (f64, f64) {
    let main = measure_triad((64 << 20) / 24, 3);
    let llc = measure_triad((2 << 20) / 24, 20);
    (main.gbps, llc.gbps)
}

/// A host machine model with its bandwidth fields replaced by real
/// STREAM-triad measurements (the analytic `P_MB` / `P_peak` bounds
/// of a [`HostSource`](crate::model::MachineModel) become meaningful
/// once `B_max` is measured rather than guessed).
pub fn calibrated_host_model() -> crate::model::MachineModel {
    let (main, llc) = calibrate_host();
    let mut m = crate::model::MachineModel::host();
    m.bw_main_gbps = main;
    // The LLC-resident triad can come out below the main-memory one
    // on loaded machines; keep the model consistent.
    m.bw_llc_gbps = llc.max(main);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_reports_positive_bandwidth() {
        let r = measure_triad(100_000, 2);
        assert!(r.gbps > 0.0);
        assert_eq!(r.working_set_bytes, 2_400_000);
        assert_eq!(r.reps, 2);
    }

    #[test]
    fn triad_result_is_arithmetically_correct() {
        // Indirectly verified by the internal assertion; verify the
        // kernel semantics with a tiny n here.
        let r = measure_triad(16, 1);
        assert!(r.gbps.is_finite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_panics() {
        measure_triad(0, 1);
    }

    #[test]
    fn small_working_set_not_slower_than_huge_one() {
        // Not a strict invariant on loaded CI machines, so only check
        // both run and produce sane numbers.
        let small = measure_triad(50_000, 5);
        let large = measure_triad(2_000_000, 2);
        assert!(small.gbps.is_finite() && large.gbps.is_finite());
    }
}
