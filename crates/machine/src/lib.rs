//! # spmv-machine
//!
//! Machine models and memory-system substrates for the `spmv-tune`
//! workspace.
//!
//! The paper evaluates on three x86 platforms (Table 1): Intel Xeon
//! Phi 3120P (Knights Corner), Xeon Phi 7250 (Knights Landing, flat
//! HBM) and Xeon E5-2699 v4 (Broadwell). None of that hardware is
//! available here, so this crate captures each platform as a
//! [`model::MachineModel`] — core counts, SMT, SIMD width, cache
//! hierarchy, STREAM bandwidths and cache-miss latency — which the
//! `spmv-sim` crate turns into deterministic SpMV performance
//! predictions.
//!
//! The crate also provides:
//!
//! * [`cache`] — a set-associative LRU cache simulator used to count
//!   misses on the irregular `x`-vector accesses;
//! * [`stream`] — a real STREAM-triad microbenchmark for calibrating
//!   a [`model::MachineModel::host`] model on the machine running the
//!   code.

pub mod cache;
pub mod model;
pub mod stream;

pub use cache::{Cache, CacheConfig};
pub use model::MachineModel;
