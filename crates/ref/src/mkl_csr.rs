//! Plain parallel CSR kernel standing in for MKL's `mkl_dcsrmv()`.
//!
//! Library CSR kernels without an inspection phase split the row
//! space into equal-row-count blocks: they cannot know the nonzero
//! distribution, so skewed matrices imbalance badly — exactly the
//! behaviour the paper's optimizers exploit.

use spmv_kernels::baseline::{CsrKernel, InnerLoop};
use spmv_kernels::schedule::{Schedule, ThreadTimes};
use spmv_kernels::variant::SpmvKernel;
use spmv_sparse::Csr;

/// MKL-CSR-like reference kernel.
#[derive(Debug)]
pub struct MklLikeCsr<'a> {
    inner: CsrKernel<'a>,
}

impl<'a> MklLikeCsr<'a> {
    /// Wraps `a` with `nthreads` workers.
    pub fn new(a: &'a Csr, nthreads: usize) -> MklLikeCsr<'a> {
        MklLikeCsr {
            inner: CsrKernel::with_options(a, nthreads, Schedule::StaticRows, InnerLoop::Scalar),
        }
    }
}

impl SpmvKernel for MklLikeCsr<'_> {
    fn run_timed(&self, x: &[f64], y: &mut [f64]) -> ThreadTimes {
        self.inner.run_timed(x, y)
    }

    fn name(&self) -> String {
        "mkl-like-csr".into()
    }

    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn format_bytes(&self) -> usize {
        self.inner.format_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    #[test]
    fn matches_serial_reference() {
        let a = gen::powerlaw(1_000, 8, 2.0, 3).unwrap();
        let k = MklLikeCsr::new(&a, 4);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y_ref = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y_ref);
        let mut y = vec![0.0; a.nrows()];
        k.run(&x, &mut y);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn reports_identity() {
        let a = gen::banded(100, 2, 1.0, 1).unwrap();
        let k = MklLikeCsr::new(&a, 2);
        assert_eq!(k.name(), "mkl-like-csr");
        assert_eq!(k.nrows(), 100);
        assert_eq!(k.format_bytes(), a.footprint_bytes());
    }
}
