//! # spmv-ref
//!
//! MKL-like reference baselines — the comparison points of the paper's
//! evaluation (§IV-C). Intel MKL itself is closed-source and
//! x86-binary only, so this crate implements behavioural stand-ins
//! (substitutions documented in DESIGN.md):
//!
//! * [`mkl_csr::MklLikeCsr`] — stands in for `mkl_dcsrmv()`: a plain
//!   parallel CSR kernel with equal-row-count static partitioning and
//!   no structure inspection;
//! * [`inspector::InspectorExecutor`] — stands in for the MKL
//!   Inspector-Executor `mkl_sparse_d_mv()`: an inspection phase
//!   analyzes row-length statistics, rebalances the partitioning, and
//!   converts regular matrices to an ELL hybrid; its preprocessing
//!   cost is tracked for the amortization study.
//!
//! The [`simulate`] module mirrors both baselines inside the
//! `spmv-sim` cost model so the multi-platform experiments can
//! include them.

pub mod inspector;
pub mod mkl_csr;
pub mod simulate;

pub use inspector::InspectorExecutor;
pub use mkl_csr::MklLikeCsr;
