//! Simulator glue for the reference baselines: how MKL-like CSR and
//! the Inspector-Executor appear inside the `spmv-sim` cost model, so
//! the multi-platform experiments (paper Fig. 6, Table 4) can include
//! them on machines we do not have.

use spmv_kernels::variant::{KernelVariant, Optimization};
use spmv_sim::cost::{CostModel, SimResult, SimSpec};
use spmv_sim::prep::{PrepModel, CODEGEN_SECONDS};
use spmv_sim::profile::MatrixProfile;

/// Simulates the MKL-CSR-like kernel: scalar inner loop, equal-row
/// static partitioning, no preprocessing.
pub fn simulate_mkl_csr(model: &CostModel, profile: &MatrixProfile) -> SimResult {
    model.simulate(profile, SimSpec { equal_rows: true, ..SimSpec::baseline() })
}

/// Inspection decision mirrored from
/// [`crate::InspectorExecutor::inspect`]: regular row lengths take the
/// vectorized (ELL-like) path.
pub fn inspector_plan_is_regular(profile: &MatrixProfile) -> bool {
    let n = profile.nrows.max(1) as f64;
    let avg = profile.nnz as f64 / n;
    if avg <= 0.0 {
        return false;
    }
    let var = profile
        .row_nnz
        .iter()
        .map(|&k| {
            let d = f64::from(k) - avg;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() < 0.5 * avg
}

/// Simulates the Inspector-Executor: nnz-rebalanced, vectorized
/// traversal (the ELL plan's benefit is modelled as the vectorized
/// inner loop over a regular layout). Returns the run result and the
/// preprocessing seconds charged to it.
pub fn simulate_inspector(
    model: &CostModel,
    prep: &PrepModel,
    profile: &MatrixProfile,
) -> (SimResult, f64) {
    let variant = KernelVariant::single(Optimization::Vectorize);
    let result = model.simulate(profile, SimSpec::variant(variant));
    // Inspection: one O(NNZ) statistics sweep; conversion: one
    // copy-through when the ELL plan is taken; plus plan codegen.
    let mut t_pre = prep.feature_extract_seconds(profile, true) + CODEGEN_SECONDS;
    if inspector_plan_is_regular(profile) {
        t_pre += prep.decompose_seconds(profile); // same cost shape as a full copy
    }
    (result, t_pre)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_machine::MachineModel;
    use spmv_sparse::gen;

    fn setup(a: &spmv_sparse::Csr) -> (CostModel, PrepModel, MatrixProfile) {
        let m = MachineModel::knl();
        let model = CostModel::new(m.clone());
        let p = MatrixProfile::analyze(a, &m);
        (model, PrepModel::new(m), p)
    }

    #[test]
    fn mkl_like_is_no_faster_than_nnz_balanced_baseline_on_skew() {
        let a = gen::circuit(100_000, 4, 0.3, 5, 3).unwrap();
        let (model, _, p) = setup(&a);
        let mkl = simulate_mkl_csr(&model, &p);
        let base = model.simulate(&p, SimSpec::baseline());
        assert!(mkl.gflops <= base.gflops * 1.05, "{} vs {}", mkl.gflops, base.gflops);
    }

    #[test]
    fn inspector_beats_mkl_on_regular_matrices() {
        let a = gen::banded(60_000, 24, 0.95, 3).unwrap();
        let (model, prep, p) = setup(&a);
        let mkl = simulate_mkl_csr(&model, &p);
        let (ie, t_pre) = simulate_inspector(&model, &prep, &p);
        assert!(ie.gflops >= mkl.gflops, "{} vs {}", ie.gflops, mkl.gflops);
        assert!(t_pre > 0.0);
    }

    #[test]
    fn plan_decision_matches_row_statistics() {
        let regular = gen::banded(5_000, 8, 1.0, 1).unwrap();
        let skewed = gen::circuit(20_000, 3, 0.4, 5, 2).unwrap();
        let m = MachineModel::knc();
        assert!(inspector_plan_is_regular(&MatrixProfile::analyze(&regular, &m)));
        assert!(!inspector_plan_is_regular(&MatrixProfile::analyze(&skewed, &m)));
    }

    #[test]
    fn inspector_prep_includes_conversion_only_for_regular() {
        let regular = gen::banded(30_000, 8, 1.0, 1).unwrap();
        let irregular = gen::powerlaw(30_000, 8, 1.8, 1).unwrap();
        let (model, prep, pr) = setup(&regular);
        let (_, t_reg) = simulate_inspector(&model, &prep, &pr);
        let (model2, prep2, pi) = setup(&irregular);
        let (_, t_irr) = simulate_inspector(&model2, &prep2, &pi);
        // Same machine; the regular matrix pays the conversion.
        assert!(t_reg > prep.feature_extract_seconds(&pr, true));
        assert!(t_irr < t_reg + prep2.feature_extract_seconds(&pi, true));
    }
}
