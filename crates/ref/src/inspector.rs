//! Inspector-Executor autotuning proxy, standing in for MKL's
//! `mkl_sparse_d_mv()` with `mkl_sparse_optimize()`.
//!
//! The inspection phase examines row-length statistics and chooses an
//! execution plan:
//!
//! * regular row lengths (`nnz_sd < 0.5 * nnz_avg`) → convert to an
//!   ELL hybrid for vector-friendly traversal;
//! * irregular lengths → keep CSR but rebalance with nnz-balanced
//!   partitioning and an unrolled inner loop.
//!
//! Unlike the paper's optimizer it is *not* bottleneck-aware: it never
//! prefetches, never decomposes long rows, and pays its inspection +
//! conversion cost on every matrix — the two properties (decent
//! speedup over plain CSR, mid-range preprocessing cost) the paper
//! measures it by.

use std::time::Instant;

use spmv_kernels::baseline::{CsrKernel, InnerLoop};
use spmv_kernels::schedule::{execute, Schedule, ThreadTimes, YPtr};
use spmv_kernels::variant::SpmvKernel;
use spmv_sparse::stats::RowStats;
use spmv_sparse::{Csr, EllHybrid};

/// Execution plan chosen by the inspector.
enum Plan<'a> {
    /// ELL hybrid with parallel slab traversal + serial tail.
    Ell(Box<EllHybrid>),
    /// Rebalanced CSR with an unrolled inner loop.
    Csr(CsrKernel<'a>),
}

/// Inspector-Executor reference implementation.
pub struct InspectorExecutor<'a> {
    plan: Plan<'a>,
    nthreads: usize,
    /// Seconds spent inspecting + converting (reported to the
    /// amortization study).
    pub prep_seconds: f64,
}

impl<'a> InspectorExecutor<'a> {
    /// Runs the inspection phase on `a` and builds the execution plan.
    pub fn inspect(a: &'a Csr, nthreads: usize) -> InspectorExecutor<'a> {
        let t0 = Instant::now();
        let stats = RowStats::compute(a, 8);
        let s = stats.nnz_summary();
        let regular = s.avg > 0.0 && s.sd < 0.5 * s.avg;
        let plan = if regular {
            let width = EllHybrid::auto_width(a);
            Plan::Ell(Box::new(EllHybrid::from_csr(a, width)))
        } else {
            Plan::Csr(CsrKernel::with_options(
                a,
                nthreads,
                Schedule::NnzBalanced,
                InnerLoop::Unrolled,
            ))
        };
        InspectorExecutor { plan, nthreads, prep_seconds: t0.elapsed().as_secs_f64() }
    }

    /// Whether the inspector selected the ELL-hybrid plan.
    pub fn uses_ell(&self) -> bool {
        matches!(self.plan, Plan::Ell(_))
    }
}

impl SpmvKernel for InspectorExecutor<'_> {
    fn run_timed(&self, x: &[f64], y: &mut [f64]) -> ThreadTimes {
        match &self.plan {
            Plan::Csr(k) => k.run_timed(x, y),
            Plan::Ell(h) => {
                assert_eq!(x.len(), h.ncols(), "x length");
                assert_eq!(y.len(), h.nrows(), "y length");
                // Equal-row partitioning is fine here: ELL rows are
                // uniform by construction.
                let uniform_rowptr: Vec<usize> = (0..=h.nrows()).collect();
                let yptr = YPtr(y.as_mut_ptr());
                let times =
                    execute(Schedule::StaticRows, &uniform_rowptr, self.nthreads, |range| {
                        if range.is_empty() {
                            return;
                        }
                        // SAFETY: `execute` yields disjoint ranges and
                        // the buffer outlives the dispatch.
                        let out = unsafe { yptr.subslice(range.start, range.len()) };
                        h.spmv_ell_rows_into(range, x, out);
                    });
                // Serial tail (few overflow entries by construction).
                for (r, c, v) in h.tail().iter() {
                    y[r] += v * x[c];
                }
                times
            }
        }
    }

    fn name(&self) -> String {
        match &self.plan {
            Plan::Ell(h) => format!("inspector-executor[ell w={}]", h.ell_width()),
            Plan::Csr(_) => "inspector-executor[csr unrolled]".into(),
        }
    }

    fn nrows(&self) -> usize {
        match &self.plan {
            Plan::Ell(h) => h.nrows(),
            Plan::Csr(k) => k.nrows(),
        }
    }

    fn ncols(&self) -> usize {
        match &self.plan {
            Plan::Ell(h) => h.ncols(),
            Plan::Csr(k) => k.ncols(),
        }
    }

    fn format_bytes(&self) -> usize {
        match &self.plan {
            Plan::Ell(h) => h.footprint_bytes(),
            Plan::Csr(k) => k.format_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    fn check(a: &Csr, nthreads: usize) -> InspectorExecutor<'_> {
        let ie = InspectorExecutor::inspect(a, nthreads);
        let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut y_ref = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y_ref);
        let mut y = vec![0.0; a.nrows()];
        ie.run(&x, &mut y);
        for (i, (u, v)) in y.iter().zip(&y_ref).enumerate() {
            assert!((u - v).abs() < 1e-9, "row {i}: {u} vs {v}");
        }
        ie
    }

    #[test]
    fn regular_matrix_selects_ell() {
        let a = gen::banded(2_000, 6, 1.0, 3).unwrap();
        let ie = check(&a, 4);
        assert!(ie.uses_ell(), "{}", ie.name());
        assert!(ie.prep_seconds >= 0.0);
    }

    #[test]
    fn skewed_matrix_keeps_csr() {
        let a = gen::circuit(3_000, 3, 0.4, 5, 7).unwrap();
        let ie = check(&a, 4);
        assert!(!ie.uses_ell(), "{}", ie.name());
    }

    #[test]
    fn powerlaw_matrix_correct_any_plan() {
        let a = gen::powerlaw(2_000, 7, 1.9, 5).unwrap();
        check(&a, 3);
    }

    #[test]
    fn single_thread_works() {
        let a = gen::banded(500, 3, 1.0, 9).unwrap();
        check(&a, 1);
    }
}
