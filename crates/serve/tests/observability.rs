//! End-to-end request-scoped observability test: a live daemon
//! topology (server lane, scheduler worker lane, client lanes on one
//! `ExecEngine`) serving real HTTP requests, with the process tracer
//! enabled — then the full observability surface is asserted:
//!
//! * every served request's six lifecycle stages (`admitted → queued
//!   → batched → dispatched → kernel → responded`) appear in the
//!   trace ring exactly once each, in causal order, keyed by the
//!   RequestId the response returned;
//! * `/metrics` exemplars reference RequestIds of actual requests
//!   from this run, and the roofline attainment gauges are live;
//! * `GET /v1/observe/{name}` reports the matrix's attainment and the
//!   recent requests' stage breakdowns;
//! * the `/trace` Chrome export carries the per-request track
//!   (pid-2 "requests" process);
//! * the instrumentation keeps pooled-dispatch overhead within the
//!   2% budget (plus an absolute floor for timer/SMT noise) against
//!   an untraced baseline engine.
//!
//! One test function by design: the tracer, serve counters and
//! roofline monitor are process-global, so this binary owns them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use spmv_kernels::engine::with_dispatch_tag;
use spmv_kernels::ExecEngine;
use spmv_serve::SpmvService;
use spmv_sparse::{gen, mm, Csr};
use spmv_telemetry::{
    http_request, serve_latency, tracer, EventKind, JsonValue, MetricsServer, TraceBuffer,
    TraceEvent,
};

const CLIENTS: u64 = 2;
const REQUESTS_PER_CLIENT: usize = 12;
const MATRIX: &str = "obs-e2e";

/// Stage names in causal order.
const STAGES: [&str; 6] = ["admitted", "queued", "batched", "dispatched", "kernel", "responded"];

fn mm_bytes(a: &Csr) -> Vec<u8> {
    let mut out = Vec::new();
    mm::write_csr(&mut out, a).expect("serialize");
    out
}

/// Parses `digest <hex> rid <n>` into the request id.
fn rid_of(body: &[u8]) -> Option<u64> {
    let text = String::from_utf8_lossy(body);
    let mut tokens = text.split_whitespace();
    match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
        (Some("digest"), Some(_), Some("rid"), Some(r)) => r.parse().ok(),
        _ => None,
    }
}

#[test]
fn request_scoped_observability_end_to_end() {
    let trace = tracer();
    trace.clear();
    trace.set_enabled(true);

    let matrix = gen::banded(200, 4, 0.9, 33).unwrap();
    let svc = SpmvService::new(2, 1, 64, 4);
    let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    server.set_read_timeout(std::time::Duration::from_millis(500));
    let addr = server.local_addr().expect("bound");
    let stop = AtomicBool::new(false);
    let clients_done = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let rids: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    // Lane plan: 0 = scheduler worker, 1 = HTTP server, 2..=3 =
    // clients firing digest requests at one shared matrix.
    let engine = ExecEngine::new(4);
    let svc_ref = &svc;
    let server_ref = &server;
    let stop_ref = &stop;
    let done_ref = &clients_done;
    let failures_ref = &failures;
    let rids_ref = &rids;
    let matrix_ref = &matrix;
    engine.run(&move |lane| match lane {
        0 => svc_ref.scheduler().worker_loop(),
        1 => {
            server_ref.serve_with(Some(svc_ref), Some(stop_ref), None).expect("serve lane");
            svc_ref.scheduler().shutdown();
        }
        client => {
            let idx = client - 2;
            let run = || -> Result<(), String> {
                // Both clients race to register; 200 and 409 are both
                // "the matrix is there".
                let (status, body) = http_request(
                    addr,
                    "POST",
                    &format!("/v1/matrices/{MATRIX}"),
                    &mm_bytes(matrix_ref),
                )
                .map_err(|e| format!("register io: {e}"))?;
                if status != 200 && status != 409 {
                    return Err(format!("register: {status} {}", String::from_utf8_lossy(&body)));
                }
                for i in 0..REQUESTS_PER_CLIENT {
                    let spec = format!("seed {}", i * 3 + idx);
                    let target = format!("/v1/spmv/{MATRIX}?digest=1");
                    let (status, body) = http_request(addr, "POST", &target, spec.as_bytes())
                        .map_err(|e| format!("spmv io: {e}"))?;
                    if status == 503 {
                        continue; // shed: legal under backpressure
                    }
                    if status != 200 {
                        return Err(format!("spmv: {status} {}", String::from_utf8_lossy(&body)));
                    }
                    let rid = rid_of(&body).ok_or_else(|| {
                        format!("response missing rid: {}", String::from_utf8_lossy(&body))
                    })?;
                    rids_ref.lock().unwrap().push(rid);
                }
                Ok(())
            };
            if let Err(e) = run() {
                eprintln!("client {idx} failed: {e}");
                failures_ref.fetch_add(1, Ordering::SeqCst);
            }
            if done_ref.fetch_add(1, Ordering::SeqCst) + 1 == CLIENTS {
                // Last client: exercise the observability surfaces
                // over live HTTP before stopping the daemon.
                if let Err(e) = assert_http_surfaces(addr, rids_ref) {
                    eprintln!("observability surface failed: {e}");
                    failures_ref.fetch_add(1, Ordering::SeqCst);
                }
                let _ = http_request(addr, "POST", "/control/stop", b"");
            }
        }
    });

    assert_eq!(failures.load(Ordering::SeqCst), 0, "a client or surface check failed");
    let rids = rids.into_inner().unwrap();
    assert!(
        rids.len() >= REQUESTS_PER_CLIENT,
        "too few completions for a meaningful run: {}",
        rids.len()
    );

    // Every served request's span timeline is complete and causal.
    let stage_events: Vec<TraceEvent> =
        trace.snapshot().into_iter().filter(|e| e.kind == EventKind::Stage).collect();
    for &rid in &rids {
        let mine: Vec<&TraceEvent> = stage_events.iter().filter(|e| e.arg == rid).collect();
        let mut starts = Vec::with_capacity(STAGES.len());
        for stage in STAGES {
            let hits: Vec<&&TraceEvent> = mine.iter().filter(|e| e.name == stage).collect();
            assert_eq!(
                hits.len(),
                1,
                "request {rid}: stage {stage:?} emitted {} times (events: {mine:?})",
                hits.len()
            );
            starts.push(hits[0].start_ns);
        }
        for (i, pair) in starts.windows(2).enumerate() {
            assert!(
                pair[0] <= pair[1],
                "request {rid}: stage {:?} (t={}) starts after {:?} (t={})",
                STAGES[i],
                pair[0],
                STAGES[i + 1],
                pair[1]
            );
        }
    }

    // Exemplars point at real requests from this run.
    let exemplars: Vec<_> = serve_latency().snapshot().exemplars.into_iter().flatten().collect();
    assert!(!exemplars.is_empty(), "no exemplar recorded by {} completions", rids.len());
    for ex in &exemplars {
        assert!(
            rids.contains(&ex.rid),
            "exemplar rid {} is not a request of this run: {ex:?}",
            ex.rid
        );
        assert!(ex.kernel_seconds > 0.0, "exemplar missing kernel share: {ex:?}");
    }

    trace.set_enabled(false);

    // Overhead budget: the instrumentation (dispatch-tag read + trace
    // records on an enabled tracer) must stay within 2% of an
    // untraced pooled dispatch, plus an absolute floor for timer and
    // scheduling noise. Best-of-N minima keep the comparison stable.
    let (base, instrumented) = dispatch_minima();
    assert!(
        instrumented <= base * 1.02 + 100e-6,
        "instrumented pooled dispatch {:.1} us exceeds 2% budget over baseline {:.1} us",
        instrumented * 1e6,
        base * 1e6
    );
    eprintln!(
        "pooled dispatch: baseline {:.1} us, instrumented {:.1} us ({:+.2}%)",
        base * 1e6,
        instrumented * 1e6,
        (instrumented / base - 1.0) * 100.0
    );
}

/// Scrapes `/metrics`, `/v1/observe/{name}` and `/trace` over live
/// HTTP and asserts the new observability surfaces are populated.
fn assert_http_surfaces(addr: std::net::SocketAddr, rids: &Mutex<Vec<u64>>) -> Result<(), String> {
    let fetch = |path: &str| -> Result<String, String> {
        let (status, body) =
            http_request(addr, "GET", path, b"").map_err(|e| format!("{path} io: {e}"))?;
        if status != 200 {
            return Err(format!("{path}: status {status}"));
        }
        Ok(String::from_utf8_lossy(&body).into_owned())
    };

    let metrics = fetch("/metrics")?;
    if !metrics.contains(&format!("spmv_roofline_attainment{{matrix=\"{MATRIX}\"}}")) {
        return Err(format!("roofline attainment gauge missing:\n{metrics}"));
    }
    if !metrics.contains(" # {request_id=\"") {
        return Err(format!("no exemplar on any latency bucket:\n{metrics}"));
    }

    let observe = fetch(&format!("/v1/observe/{MATRIX}"))?;
    let doc = JsonValue::parse(&observe).map_err(|e| format!("observe parse: {e:?}"))?;
    let attainment = doc
        .get("roofline")
        .and_then(|r| r.get("attainment"))
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("observe missing roofline attainment: {observe}"))?;
    if attainment <= 0.0 {
        return Err(format!("attainment not accumulating: {observe}"));
    }
    let known = rids.lock().unwrap();
    let requests = doc
        .get("requests")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("observe missing requests: {observe}"))?;
    if requests.is_empty() {
        return Err("observe reports no recent requests".to_string());
    }
    for req in requests {
        let rid = req
            .get("rid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("observation missing rid: {observe}"))?;
        // The ring may already hold requests whose responses are
        // still in flight to the other client, so only rids we have
        // *collected* are checkable — but every checked one must be
        // ours (the registry serves only this test's matrix).
        if !known.contains(&rid) && known.len() >= CLIENTS as usize * REQUESTS_PER_CLIENT {
            return Err(format!("observation rid {rid} unknown to any client"));
        }
    }

    let chrome = fetch("/trace")?;
    if !chrome.contains("\"requests\"") || !chrome.contains("\"admitted\"") {
        return Err("Chrome export missing the per-request track".to_string());
    }
    Ok(())
}

/// Best-of-N wall time of one pooled dispatch on a private baseline
/// engine (tracer disabled, no tag) vs an instrumented one (tracer
/// enabled, request-tagged) — the exact code paths PR 9 added to the
/// serving plane's kernel dispatches.
fn dispatch_minima() -> (f64, f64) {
    const LANES: usize = 2;
    const REPS: usize = 50;
    const WORK: u64 = 400_000;

    let work = |lane: usize| {
        let mut acc = lane as f64;
        for i in 0..WORK {
            acc = acc.mul_add(1.000000001, (i & 7) as f64 * 1e-9);
        }
        std::hint::black_box(acc);
    };

    let base_trace: &'static TraceBuffer = Box::leak(Box::new(TraceBuffer::new(1024)));
    let instr_trace: &'static TraceBuffer = Box::leak(Box::new(TraceBuffer::new(1024)));
    instr_trace.set_enabled(true);
    let base_engine = ExecEngine::with_tracer(LANES, base_trace);
    let instr_engine = ExecEngine::with_tracer(LANES, instr_trace);

    let minimum = |engine: &ExecEngine, tag: u64| -> f64 {
        let mut best = f64::INFINITY;
        for rep in 0..REPS {
            let t0 = Instant::now();
            if tag == 0 {
                engine.run_labeled("overhead-base", &work);
            } else {
                with_dispatch_tag(tag + rep as u64, || engine.run_labeled("overhead-instr", &work));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    // Warm both pools before timing.
    for _ in 0..5 {
        base_engine.run_labeled("warmup", &work);
        instr_engine.run_labeled("warmup", &work);
    }
    let base = minimum(&base_engine, 0);
    let instrumented = minimum(&instr_engine, 7_000);
    assert!(
        instr_trace.recorded() > 0,
        "instrumented engine recorded no trace events — the comparison is vacuous"
    );
    (base, instrumented)
}
