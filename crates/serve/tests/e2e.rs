//! End-to-end serving test: a real daemon topology inside one test —
//! HTTP server lane, scheduler worker lane and client lanes all
//! running concurrently on one `ExecEngine` (the workspace bans
//! thread creation outside the engine, so the engine IS the test's
//! concurrency source, exactly as in the daemon).
//!
//! Two matrices are registered over HTTP, clients fire concurrent
//! mixed requests (both matrices, exact + tuned modes, full + digest
//! responses) so the scheduler sees interleaved traffic it can
//! coalesce, every full response is asserted **bitwise-equal** to the
//! serial reference, and `/metrics` is asserted to export the serving
//! latency histogram and rejection counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use spmv_kernels::ExecEngine;
use spmv_serve::{service::build_x, Mode, Scheduler, SpmvService, SubmitError};
use spmv_sparse::{gen, mm, Csr};
use spmv_telemetry::{http_request, serve_stats, MetricsServer};

/// Requests per client lane (×2 lanes ×2 phases keeps the test fast
/// but still overlapping enough to form batches).
const REQUESTS_PER_CLIENT: usize = 30;

fn mm_bytes(a: &Csr) -> Vec<u8> {
    let mut out = Vec::new();
    mm::write_csr(&mut out, a).expect("serialize");
    out
}

fn hex_vector(body: &[u8]) -> Vec<f64> {
    String::from_utf8_lossy(body)
        .lines()
        .map(|l| f64::from_bits(u64::from_str_radix(l.trim(), 16).expect("hex f64")))
        .collect()
}

fn serial_reference(a: &Csr, spec: &str) -> Vec<f64> {
    let x = build_x(spec, a.ncols()).expect("spec");
    let mut y = vec![0.0; a.nrows()];
    a.spmv(&x, &mut y);
    y
}

#[test]
fn serving_plane_end_to_end() {
    let matrix_a = gen::banded(180, 4, 0.9, 21).unwrap();
    let matrix_b = gen::powerlaw(240, 5, 2.0, 22).unwrap();

    let svc = SpmvService::new(2, 1, 64, 4);
    let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    server.set_read_timeout(std::time::Duration::from_millis(500));
    let addr = server.local_addr().expect("bound");
    let stop = AtomicBool::new(false);
    let clients_done = AtomicU64::new(0);
    let failures: [AtomicU64; 2] = [AtomicU64::new(0), AtomicU64::new(0)];

    // Lane plan: 0 = scheduler worker, 1..=2 = HTTP server lanes
    // (two, so client requests genuinely overlap and the scheduler
    // can coalesce), 3..=4 = clients.
    let engine = ExecEngine::new(5);
    let svc_ref = &svc;
    let server_ref = &server;
    let stop_ref = &stop;
    let done_ref = &clients_done;
    let failures_ref = &failures;
    let a_ref = &matrix_a;
    let b_ref = &matrix_b;
    engine.run(&move |lane| match lane {
        0 => svc_ref.scheduler().worker_loop(),
        1 | 2 => {
            server_ref.serve_with(Some(svc_ref), Some(stop_ref), None).expect("serve lane");
            // Server stopped: drain the scheduler so lane 0 exits
            // (idempotent across the two serve lanes).
            svc_ref.scheduler().shutdown();
        }
        client => {
            let idx = client - 3;
            let (name, matrix) = if idx == 0 { ("mat-a", a_ref) } else { ("mat-b", b_ref) };
            let run = || -> Result<(), String> {
                // Register this client's matrix over HTTP.
                let (status, body) =
                    http_request(addr, "POST", &format!("/v1/matrices/{name}"), &mm_bytes(matrix))
                        .map_err(|e| format!("register io: {e}"))?;
                if status != 200 {
                    return Err(format!("register: {status} {}", String::from_utf8_lossy(&body)));
                }
                for i in 0..REQUESTS_PER_CLIENT {
                    let spec = format!("seed {}", i * 7 + idx);
                    let mode = if i % 3 == 0 { "?mode=tuned" } else { "" };
                    let target = format!("/v1/spmv/{name}{mode}");
                    let (status, body) = http_request(addr, "POST", &target, spec.as_bytes())
                        .map_err(|e| format!("spmv io: {e}"))?;
                    if status == 503 {
                        continue; // shed by backpressure: legal, counted server-side
                    }
                    if status != 200 {
                        return Err(format!("spmv: {status} {}", String::from_utf8_lossy(&body)));
                    }
                    let y = hex_vector(&body);
                    let y_ref = serial_reference(matrix, &spec);
                    if mode.is_empty() {
                        // Exact mode (incl. any batch it was coalesced
                        // into) must be bitwise-serial.
                        for (row, (got, want)) in y.iter().zip(&y_ref).enumerate() {
                            if got.to_bits() != want.to_bits() {
                                return Err(format!("bitwise mismatch {name} row {row}"));
                            }
                        }
                    } else {
                        for (got, want) in y.iter().zip(&y_ref) {
                            if (got - want).abs() > 1e-10 * want.abs().max(1.0) {
                                return Err(format!("tuned tolerance exceeded on {name}"));
                            }
                        }
                    }
                }
                // One mid-flight /metrics scrape over HTTP.
                let (status, body) = http_request(addr, "GET", "/metrics", b"")
                    .map_err(|e| format!("metrics io: {e}"))?;
                if status != 200 || !String::from_utf8_lossy(&body).contains("spmv_serve_latency") {
                    return Err("metrics scrape missing serve histogram".to_string());
                }
                Ok(())
            };
            if let Err(e) = run() {
                eprintln!("client {idx} failed: {e}");
                failures_ref[idx].store(1, Ordering::SeqCst);
            }
            // Last client out stops the server.
            if done_ref.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                let _ = http_request(addr, "POST", "/control/stop", b"");
            }
        }
    });

    assert_eq!(failures[0].load(Ordering::SeqCst), 0, "client 0 failed");
    assert_eq!(failures[1].load(Ordering::SeqCst), 0, "client 1 failed");

    // The global serving counters saw this traffic (other tests in
    // this binary would share the statics, but e2e is the only test
    // here by design).
    let stats = serve_stats();
    assert!(stats.admitted() >= 2, "no requests admitted");
    assert!(stats.completed() >= 2, "no requests completed");

    // Rejection path: a capacity-0 scheduler sheds, and the rejection
    // shows up in the same global counters /metrics exports.
    let rejecting = Scheduler::rejecting();
    let m = svc.registry().get("mat-a").expect("registered");
    let err = rejecting.submit(Arc::clone(&m), Mode::Exact, vec![0.0; m.ncols()]).unwrap_err();
    assert_eq!(err, SubmitError::QueueFull);
    assert!(stats.rejected() >= 1);

    // Final exposition snapshot: histogram populated, counters exported.
    let text = spmv_telemetry::MetricsRegistry::gather().render();
    let count: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("spmv_serve_latency_seconds_count "))
        .expect("histogram count exported")
        .parse()
        .unwrap();
    assert!(count >= 2.0, "latency histogram empty:\n{text}");
    let p99: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("spmv_serve_latency_p99_seconds "))
        .expect("p99 exported")
        .parse()
        .unwrap();
    assert!(p99 > 0.0, "p99 not populated");
    assert!(text.contains("\nspmv_serve_rejected_total "), "rejection counter missing");
    assert!(text.contains("spmv_serve_latency_seconds_bucket{le=\"+Inf\"}"), "buckets missing");
}
