//! The batching throughput claim, measured: serving the same
//! request stream through the scheduler with coalescing disabled
//! (`batch_max = 1`) versus enabled (`batch_max = 8`), at equal
//! kernel thread count, on a matrix large enough that the per-request
//! matrix traversal is the dominant cost.
//!
//! Eight submitter lanes keep the queue ~8 deep, so the batched
//! configuration streams the matrix once per ~8 requests where the
//! unbatched one streams it once per request — the SpMM amortization
//! (DESIGN.md §12). The test asserts the batched wall clock is
//! strictly lower and prints the ratio; CI's serving smoke job
//! additionally checks the daemon-level counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use spmv_kernels::ExecEngine;
use spmv_serve::{MatrixRegistry, Mode, Scheduler};
use spmv_sparse::gen;
use spmv_telemetry::serve_stats;

/// Submitter lanes (and so the natural batch width under load).
const SUBMITTERS: usize = 8;
/// Requests per submitter lane per configuration.
const PER_LANE: usize = 16;

fn drive(
    scheduler: &Scheduler,
    matrix: &Arc<spmv_serve::RegisteredMatrix>,
    inputs: &[Vec<f64>],
) -> f64 {
    let remaining = AtomicU64::new(SUBMITTERS as u64);
    let engine = ExecEngine::new(SUBMITTERS + 1);
    let t0 = Instant::now();
    engine.run(&|lane| {
        if lane == 0 {
            scheduler.worker_loop();
            return;
        }
        for i in 0..PER_LANE {
            // Cloning a precomputed input is the whole per-request
            // client cost, so the measured wall clock is dominated by
            // the scheduler + kernel — the thing under test.
            let x = inputs[(lane + i) % inputs.len()].clone();
            scheduler
                .submit(Arc::clone(matrix), Mode::Exact, x)
                .expect("queue sized for all submitters");
        }
        if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            scheduler.shutdown();
        }
    });
    t0.elapsed().as_secs_f64()
}

#[test]
fn batched_serving_beats_unbatched_at_equal_threads() {
    // ~1M nnz / ~16 MB: big enough that streaming the matrix
    // dominates a request, which is the regime batching targets.
    let a = gen::banded(60_000, 9, 0.9, 33).unwrap();
    let registry = MatrixRegistry::new(2, 1);
    let matrix = registry.register("batch-ab", a).expect("register");

    // Request inputs are precomputed: generating them is client-side
    // work, not serving cost.
    let inputs: Vec<Vec<f64>> = (0..4)
        .map(|s| {
            (0..matrix.ncols()).map(|c| ((c * 31 + s * 7) % 101) as f64 * 0.25 - 12.0).collect()
        })
        .collect();

    // Warm the engine pools and page in the matrix once.
    let unbatched_scheduler = Scheduler::new(1024, 1);
    let batched_scheduler = Scheduler::new(1024, 8);
    let _ = matrix.spmv(&inputs[0], Mode::Exact);

    let batches_before = serve_stats().batches();
    let unbatched = drive(&unbatched_scheduler, &matrix, &inputs);
    let mid = serve_stats().batches();
    assert_eq!(mid, batches_before, "batch_max = 1 must never coalesce");

    let batched = drive(&batched_scheduler, &matrix, &inputs);
    let formed = serve_stats().batches() - mid;
    assert!(formed > 0, "no batches formed under {SUBMITTERS} concurrent submitters");

    let total = SUBMITTERS * PER_LANE;
    eprintln!(
        "batching A/B: {total} requests, unbatched {:.1} ms, batched {:.1} ms \
         ({formed} batches, ratio {:.2}x)",
        unbatched * 1e3,
        batched * 1e3,
        unbatched / batched
    );
    assert!(
        batched < unbatched,
        "batched serving ({batched:.3}s) not faster than unbatched ({unbatched:.3}s)"
    );
}
