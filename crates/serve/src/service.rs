//! HTTP service surface: routes the exposition server's requests
//! into the registry and scheduler.
//!
//! [`SpmvService`] implements [`HttpHandler`] and is mounted on a
//! [`spmv_telemetry::MetricsServer`] via `serve_with` — all socket
//! code stays inside the telemetry crate's exposition module (the
//! audit's socket-containment policy), and the service sees only
//! parsed requests.
//!
//! # Routes
//!
//! | route | body | effect |
//! |---|---|---|
//! | `POST /v1/matrices/{name}` | MatrixMarket text | validate + tune + register; JSON summary |
//! | `GET /v1/matrices` | — | JSON list of registered matrices |
//! | `POST /v1/spmv/{name}[?mode=tuned][&digest=1]` | request spec | one SpMV via the scheduler |
//! | `GET /v1/observe/{name}` | — | JSON roofline attainment + recent request timelines |
//! | `POST /control/stop` | — | stop the serve lanes (drain + exit) |
//!
//! The SpMV request body is a one-line *spec*, not the vector itself:
//! `fill <v>` (constant vector) or `seed <n>` (deterministic LCG
//! vector). The server generates `x` from the spec, so a 100k-request
//! load-generator run moves kilobytes, not gigabytes, and any client
//! can recompute the exact input for verification ([`build_x`]).
//!
//! The response is the result vector as lowercase-hex IEEE-754 bit
//! patterns (one per line) — lossless, so clients can assert bitwise
//! equality against a serial reference. With `digest=1` the response
//! collapses to one FNV-1a line over those bits, which keeps loadgen
//! response parsing off the latency path.

use spmv_sparse::mm;
use spmv_telemetry::{Handled, HttpHandler, HttpRequest, HttpResponse, JsonValue};

use crate::registry::{MatrixRegistry, Mode, RegisterError, RegisteredMatrix};
use crate::scheduler::{Scheduler, SubmitError};

/// The serving plane behind one HTTP endpoint.
pub struct SpmvService {
    registry: MatrixRegistry,
    scheduler: Scheduler,
}

impl SpmvService {
    /// Creates a service whose kernels are planned for `nthreads`,
    /// tuned with `tune_reps` reps per candidate, admitting at most
    /// `queue_cap` queued requests and batching up to `batch_max`.
    pub fn new(
        nthreads: usize,
        tune_reps: usize,
        queue_cap: usize,
        batch_max: usize,
    ) -> SpmvService {
        SpmvService {
            registry: MatrixRegistry::new(nthreads, tune_reps),
            scheduler: Scheduler::new(queue_cap, batch_max),
        }
    }

    /// The matrix registry (direct registration in tests and the
    /// daemon's preload path).
    pub fn registry(&self) -> &MatrixRegistry {
        &self.registry
    }

    /// The request scheduler (a daemon lane donates itself to
    /// `scheduler().worker_loop()`).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    fn register(&self, name: &str, req: &HttpRequest) -> HttpResponse {
        let a = match mm::read_csr(req.body.as_slice()) {
            Ok(a) => a,
            Err(e) => return HttpResponse::text(400, format!("matrix parse error: {e}\n")),
        };
        match self.registry.register(name, a) {
            Ok(m) => HttpResponse::json(200, matrix_summary(&m).render_pretty(2) + "\n"),
            Err(e @ RegisterError::Duplicate(_)) => HttpResponse::text(409, format!("{e}\n")),
            Err(e) => HttpResponse::text(400, format!("{e}\n")),
        }
    }

    fn list(&self) -> HttpResponse {
        let items: Vec<JsonValue> =
            self.registry.list().iter().map(|m| matrix_summary(m)).collect();
        let doc = JsonValue::obj().with("matrices", JsonValue::Arr(items));
        HttpResponse::json(200, doc.render_pretty(2) + "\n")
    }

    fn spmv(&self, name: &str, req: &HttpRequest) -> HttpResponse {
        let Some(matrix) = self.registry.get(name) else {
            return HttpResponse::text(404, format!("no matrix {name:?} registered\n"));
        };
        let mode = match Mode::parse(req.query_param("mode")) {
            Ok(mode) => mode,
            Err(e) => return HttpResponse::text(400, format!("{e}\n")),
        };
        let spec = String::from_utf8_lossy(&req.body);
        let x = match build_x(spec.trim(), matrix.ncols()) {
            Ok(x) => x,
            Err(e) => return HttpResponse::text(400, format!("{e}\n")),
        };
        match self.scheduler.submit(matrix, mode, x) {
            Ok((rid, y)) => {
                if req.query_param("digest") == Some("1") {
                    HttpResponse::text(200, format!("digest {:016x} rid {rid}\n", digest(&y)))
                } else {
                    let mut body = String::with_capacity(y.len() * 17);
                    for v in &y {
                        body.push_str(&format!("{:016x}\n", v.to_bits()));
                    }
                    HttpResponse::text(200, body)
                }
            }
            // Shed responses carry Retry-After so well-behaved
            // clients back off instead of hammering a full queue.
            Err(e @ SubmitError::QueueFull) | Err(e @ SubmitError::ShuttingDown) => {
                HttpResponse::text(503, format!("{e}\n")).with_header("Retry-After", "1")
            }
            Err(e @ SubmitError::KernelFailed) => HttpResponse::text(500, format!("{e}\n")),
        }
    }

    /// `GET /v1/observe/{name}`: the matrix's roofline attainment
    /// plus the stage breakdown of its most recent requests.
    fn observe(&self, name: &str) -> HttpResponse {
        if self.registry.get(name).is_none() {
            return HttpResponse::text(404, format!("no matrix {name:?} registered\n"));
        }
        let mut doc = JsonValue::obj().with("matrix", name);
        doc = match spmv_telemetry::monitor().get(name) {
            Some(r) => doc.with(
                "roofline",
                JsonValue::obj()
                    .with("bound_gflops", r.bound_gflops)
                    .with("achieved_gflops", r.achieved_gflops)
                    .with("attainment", r.attainment)
                    .with("samples", r.samples as i64)
                    .with("drift_total", r.drift_total as i64),
            ),
            None => doc.with("roofline", JsonValue::Null),
        };
        let requests: Vec<JsonValue> = self
            .scheduler
            .observations(name)
            .iter()
            .map(|o| {
                JsonValue::obj()
                    .with("rid", o.rid as i64)
                    .with("batch", o.batch as i64)
                    .with("queue_seconds", o.queue_seconds)
                    .with("kernel_seconds", o.kernel_seconds)
                    .with("total_seconds", o.total_seconds)
                    .with("gflops", o.gflops)
                    .with("ok", o.ok)
            })
            .collect();
        doc = doc.with("requests", JsonValue::Arr(requests));
        HttpResponse::json(200, doc.render_pretty(2) + "\n")
    }
}

impl HttpHandler for SpmvService {
    fn handle(&self, req: &HttpRequest) -> Handled {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/control/stop") => {
                return Handled::Stop(HttpResponse::text(200, "stopping\n"))
            }
            ("GET", "/v1/matrices") => return Handled::Response(self.list()),
            _ => {}
        }
        if let Some(name) = req.path.strip_prefix("/v1/matrices/") {
            return match req.method.as_str() {
                "POST" => Handled::Response(self.register(name, req)),
                _ => Handled::Response(HttpResponse::text(405, "method not allowed\n")),
            };
        }
        if let Some(name) = req.path.strip_prefix("/v1/spmv/") {
            return match req.method.as_str() {
                "POST" => Handled::Response(self.spmv(name, req)),
                _ => Handled::Response(HttpResponse::text(405, "method not allowed\n")),
            };
        }
        if let Some(name) = req.path.strip_prefix("/v1/observe/") {
            return match req.method.as_str() {
                "GET" => Handled::Response(self.observe(name)),
                _ => Handled::Response(HttpResponse::text(405, "method not allowed\n")),
            };
        }
        Handled::NotHandled
    }
}

/// JSON summary of one registered matrix: static shape and tuning
/// facts plus the live roofline attainment (null until the drift
/// monitor has seen at least one dispatch), so `GET /v1/matrices`
/// alone is enough to spot a drifted matrix without scraping
/// `/metrics` or hitting `/v1/observe/{name}` per matrix.
fn matrix_summary(m: &RegisteredMatrix) -> JsonValue {
    let doc = JsonValue::obj()
        .with("name", m.name())
        .with("nrows", m.nrows())
        .with("ncols", m.ncols())
        .with("nnz", m.nnz())
        .with("kernel", m.plan().entry.id())
        .with("tuned_gflops", m.plan().gflops)
        .with("nthreads", m.nthreads());
    match spmv_telemetry::monitor().get(m.name()) {
        Some(r) => doc.with("attainment", r.attainment),
        None => doc.with("attainment", JsonValue::Null),
    }
}

/// Expands a request spec into the input vector. Public so tests and
/// the load generator can recompute the exact server-side input.
///
/// * `fill <v>` — every element is `v`;
/// * `seed <n>` — deterministic LCG sequence in `[-2, 2)`.
pub fn build_x(spec: &str, n: usize) -> Result<Vec<f64>, String> {
    let mut tokens = spec.split_whitespace();
    match (tokens.next(), tokens.next(), tokens.next()) {
        (Some("fill"), Some(v), None) => {
            let v: f64 = v.parse().map_err(|_| format!("bad fill value {v:?}"))?;
            Ok(vec![v; n])
        }
        (Some("seed"), Some(s), None) => {
            let seed: u64 = s.parse().map_err(|_| format!("bad seed {s:?}"))?;
            Ok(seeded_x(n, seed))
        }
        _ => Err(format!("bad request spec {spec:?} (expected 'fill <v>' or 'seed <n>')")),
    }
}

/// The `seed <n>` vector: a 64-bit LCG mapped into `[-2, 2)`.
fn seeded_x(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
        .collect()
}

/// FNV-1a over the result's IEEE-754 bit patterns — order-sensitive,
/// bit-sensitive, cheap. Public so the load generator can verify
/// digests offline.
pub fn digest(y: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in y {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    fn service() -> SpmvService {
        SpmvService::new(2, 1, 8, 4)
    }

    fn post(path: &str, query: &str, body: &[u8]) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: query.into(),
            body: body.to_vec(),
        }
    }

    fn mm_bytes(a: &spmv_sparse::Csr) -> Vec<u8> {
        let mut out = Vec::new();
        mm::write_csr(&mut out, a).expect("serialize");
        out
    }

    fn response(h: Handled) -> HttpResponse {
        match h {
            Handled::Response(r) => r,
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn register_spmv_roundtrip_without_worker() {
        let svc = service();
        let a = gen::banded(80, 3, 0.9, 5).unwrap();
        let serial = a.clone();
        let reply = response(svc.handle(&post("/v1/matrices/m0", "", &mm_bytes(&a))));
        assert_eq!(reply.status, 200, "{}", String::from_utf8_lossy(&reply.body));
        let summary = JsonValue::parse(&String::from_utf8_lossy(&reply.body)).unwrap();
        assert_eq!(summary.get("nrows").and_then(JsonValue::as_f64), Some(80.0));

        // Serve one request by hand: run the submit on this thread
        // against a pre-drained scheduler is impossible (submit
        // blocks), so exercise the kernel path via the registry and
        // the spec/digest helpers the route is built from.
        let m = svc.registry().get("m0").unwrap();
        let x = build_x("seed 7", m.ncols()).unwrap();
        let y = m.spmv(&x, Mode::Exact);
        let mut y_ref = vec![0.0; serial.nrows()];
        serial.spmv(&x, &mut y_ref);
        assert_eq!(digest(&y), digest(&y_ref));
    }

    #[test]
    fn unknown_matrix_is_404_and_bad_specs_400() {
        let svc = service();
        assert_eq!(response(svc.handle(&post("/v1/spmv/ghost", "", b"fill 1"))).status, 404);

        svc.registry().register("m", spmv_sparse::Csr::identity(4)).unwrap();
        let bad_spec = response(svc.handle(&post("/v1/spmv/m", "", b"vector 1 2 3")));
        assert_eq!(bad_spec.status, 400);
        let bad_mode = response(svc.handle(&post("/v1/spmv/m", "mode=warp", b"fill 1")));
        assert_eq!(bad_mode.status, 400);
        let bad_body = response(svc.handle(&post("/v1/matrices/x", "", b"not matrixmarket")));
        assert_eq!(bad_body.status, 400);
    }

    #[test]
    fn duplicate_registration_is_409() {
        let svc = service();
        let body = mm_bytes(&spmv_sparse::Csr::identity(6));
        assert_eq!(response(svc.handle(&post("/v1/matrices/dup", "", &body))).status, 200);
        assert_eq!(response(svc.handle(&post("/v1/matrices/dup", "", &body))).status, 409);
    }

    #[test]
    fn queue_full_maps_to_503() {
        let svc =
            SpmvService { registry: MatrixRegistry::new(1, 1), scheduler: Scheduler::rejecting() };
        svc.registry().register("m", spmv_sparse::Csr::identity(4)).unwrap();
        let reply = response(svc.handle(&post("/v1/spmv/m", "", b"fill 1")));
        assert_eq!(reply.status, 503);
        // Shed responses tell clients when to come back.
        assert!(
            reply.headers.iter().any(|(k, v)| *k == "Retry-After" && v == "1"),
            "{:?}",
            reply.headers
        );
    }

    #[test]
    fn shutdown_503_also_carries_retry_after() {
        let svc = service();
        svc.registry().register("m", spmv_sparse::Csr::identity(4)).unwrap();
        svc.scheduler().shutdown();
        let reply = response(svc.handle(&post("/v1/spmv/m", "", b"fill 1")));
        assert_eq!(reply.status, 503);
        assert!(reply.headers.iter().any(|(k, _)| *k == "Retry-After"));
    }

    #[test]
    fn observe_route_reports_roofline_and_recent_requests() {
        let svc = service();
        assert_eq!(
            response(svc.handle(&HttpRequest {
                method: "GET".into(),
                path: "/v1/observe/ghost".into(),
                query: String::new(),
                body: Vec::new(),
            }))
            .status,
            404
        );
        svc.registry().register("obs-m", gen::banded(60, 2, 0.9, 3).unwrap()).unwrap();
        let reply = response(svc.handle(&HttpRequest {
            method: "GET".into(),
            path: "/v1/observe/obs-m".into(),
            query: String::new(),
            body: Vec::new(),
        }));
        assert_eq!(reply.status, 200);
        let doc = JsonValue::parse(&String::from_utf8_lossy(&reply.body)).unwrap();
        assert_eq!(doc.get("matrix").and_then(JsonValue::as_str), Some("obs-m"));
        // Registration alone wires the roofline bound; no requests yet.
        let roofline = doc.get("roofline").expect("roofline key");
        assert!(roofline.get("bound_gflops").and_then(JsonValue::as_f64).unwrap() > 0.0);
        assert!(matches!(doc.get("requests"), Some(JsonValue::Arr(items)) if items.is_empty()));
    }

    #[test]
    fn list_and_stop_routes() {
        let svc = service();
        svc.registry().register("zz", spmv_sparse::Csr::identity(3)).unwrap();
        svc.registry().register("aa", spmv_sparse::Csr::identity(3)).unwrap();
        let list = response(svc.handle(&HttpRequest {
            method: "GET".into(),
            path: "/v1/matrices".into(),
            query: String::new(),
            body: Vec::new(),
        }));
        let text = String::from_utf8_lossy(&list.body).to_string();
        assert!(text.find("aa").unwrap() < text.find("zz").unwrap(), "{text}");
        // Each entry carries the selected menu kernel and the live
        // roofline attainment, so operators can spot drifted
        // matrices from the list alone.
        let doc = JsonValue::parse(&text).unwrap();
        let items = doc.get("matrices").and_then(JsonValue::as_array).expect("matrices array");
        assert_eq!(items.len(), 2);
        for m in items {
            assert!(m.get("kernel").and_then(JsonValue::as_str).is_some(), "{text}");
            // Registration wires the drift monitor, so attainment is
            // numeric (0.0 before any dispatch), not null.
            assert!(m.get("attainment").and_then(JsonValue::as_f64).is_some(), "{text}");
        }

        assert!(matches!(svc.handle(&post("/control/stop", "", b"")), Handled::Stop(_)));
        // Unrelated paths fall through to the telemetry built-ins.
        assert!(matches!(
            svc.handle(&HttpRequest {
                method: "GET".into(),
                path: "/metrics".into(),
                query: String::new(),
                body: Vec::new(),
            }),
            Handled::NotHandled
        ));
    }

    #[test]
    fn spec_and_digest_are_deterministic() {
        assert_eq!(build_x("fill 2.5", 3).unwrap(), vec![2.5; 3]);
        assert_eq!(build_x("seed 9", 16).unwrap(), build_x("seed 9", 16).unwrap());
        assert_ne!(build_x("seed 9", 16).unwrap(), build_x("seed 10", 16).unwrap());
        assert!(build_x("", 4).is_err());
        assert!(build_x("fill x", 4).is_err());
        let y = [1.0, -2.0, 3.5];
        let y_vec: Vec<f64> = y.to_vec();
        assert_eq!(digest(&y), digest(&y_vec));
        assert_ne!(digest(&y), digest(&[1.0, -2.0, 3.50000001]));
    }
}
