//! Request scheduler: admission control, bounded-queue backpressure
//! and same-matrix batching over the shared execution engine.
//!
//! The scheduler is a classic bounded producer/consumer handshake —
//! the exact protocol model-checked as the `admission` protocol in
//! `crates/check` (see `crates/check/src/models/admission.rs`), with
//! the same structure: admission decided under the queue mutex,
//! results published *before* the completion flag, completion
//! signalled under the mutex so no wakeup is lost.
//!
//! * **Admission**: [`Scheduler::submit`] accepts a request only
//!   while the queue holds fewer than `queue_cap` pending jobs;
//!   beyond that it fails fast with [`SubmitError::QueueFull`]
//!   (surfaced as HTTP 503) instead of queueing unboundedly — the
//!   service degrades by shedding load, not by growing latency
//!   without bound. Rejections are counted in
//!   `spmv_serve_rejected_total`.
//! * **Batching**: the worker drains up to `batch_max` *same-matrix*
//!   jobs per dispatch and executes them as one multi-vector SpMM
//!   ([`spmv_kernels::SpmmKernel`]), streaming the matrix once for
//!   the whole batch. Batches form opportunistically from whatever
//!   is queued — an idle service batches nothing (no added latency),
//!   a loaded service batches aggressively (amortized bandwidth).
//!   Because the batch kernel uses scalar accumulation order, batch
//!   membership never changes results: every vector is
//!   bitwise-identical to the serial reference.
//! * **Threading**: the scheduler creates no threads. The daemon
//!   donates one `ExecEngine` lane to [`Scheduler::worker_loop`];
//!   kernel dispatches nest onto the process-global engine pools.
//!
//! # Request-scoped observability
//!
//! Every admitted request gets a process-unique **RequestId** and a
//! causal span timeline in the trace ring —
//! `admitted → queued → batched → dispatched → kernel → responded` —
//! rendered as a per-request track in the Chrome-trace export. The
//! lifecycle invariant (every admitted request's spans close exactly
//! once, in order, even when the kernel panics) is model-checked as
//! the `lifecycle` protocol in `crates/check`. The completion path
//! also attaches the RequestId and its queue/kernel breakdown as the
//! latency histogram bucket's exemplar, folds the dispatch's measured
//! GFLOP/s into the matrix's roofline-attainment EWMA, and keeps a
//! bounded ring of recent [`Observation`]s per matrix for
//! `GET /v1/observe/{name}`.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use spmv_kernels::engine::with_dispatch_tag;
use spmv_telemetry::{serve_latency, serve_stats, tracer, EventKind};

use crate::registry::{Mode, RegisteredMatrix};

/// Default bound on queued-but-unserved requests.
pub const DEFAULT_QUEUE_CAP: usize = 256;

/// Recent observations kept per matrix for `/v1/observe`.
const OBSERVATION_CAP: usize = 32;

/// Process-unique request identifiers, starting at 1 so `0` can mean
/// "no request" in the engine's dispatch-tag context.
static NEXT_RID: AtomicU64 = AtomicU64::new(1);

/// Converts span seconds to trace nanoseconds; at least 1 so a
/// completed stage never renders as empty.
fn span_ns(seconds: f64) -> u64 {
    ((seconds * 1e9) as u64).max(1)
}

/// One admitted, not-yet-completed request.
struct Pending {
    matrix: Arc<RegisteredMatrix>,
    mode: Mode,
    x: Vec<f64>,
    enqueued: Instant,
    /// RequestId: allocated at admission, propagated through batch
    /// formation, kernel dispatch and response write.
    rid: u64,
    /// Trace-clock timestamp of admission (`0` when the tracer was
    /// disabled at admission; stage events then anchor at pop time).
    admit_ns: u64,
    done: Arc<Completion>,
}

/// The per-request completion cell the submitter blocks on. `Err`
/// means the kernel dispatch panicked (surfaced as
/// [`SubmitError::KernelFailed`]).
struct Completion {
    slot: Mutex<Option<Result<Vec<f64>, ()>>>,
    ready: Condvar,
}

struct SchedState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

/// One completed request's stage breakdown, kept in a bounded
/// per-matrix ring for `GET /v1/observe/{name}` and the load
/// generator's `--trace-sample` report.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The request's process-unique id.
    pub rid: u64,
    /// Batch width the request was coalesced into (1 = solo).
    pub batch: usize,
    /// Admission → batch-pop wait.
    pub queue_seconds: f64,
    /// Kernel busy seconds (slowest thread of the dispatch).
    pub kernel_seconds: f64,
    /// Admission → response delivery.
    pub total_seconds: f64,
    /// Measured dispatch throughput fed to the roofline monitor.
    pub gflops: f64,
    /// Whether a result (vs. a kernel failure) was delivered.
    pub ok: bool,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load (HTTP 503).
    QueueFull,
    /// The scheduler is draining for shutdown.
    ShuttingDown,
    /// The kernel dispatch panicked; the request got no result
    /// (HTTP 500). The scheduler worker survives.
    KernelFailed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::ShuttingDown => write!(f, "scheduler shutting down"),
            SubmitError::KernelFailed => write!(f, "kernel dispatch failed"),
        }
    }
}

/// The admission-controlled, batching request scheduler.
pub struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    queue_cap: usize,
    batch_max: usize,
    /// Recent completed-request breakdowns per matrix name (bounded
    /// ring, newest last). Touched once per completion — off the
    /// kernel dispatch path.
    observations: Mutex<HashMap<String, VecDeque<Observation>>>,
}

impl Scheduler {
    /// Creates a scheduler admitting at most `queue_cap` queued
    /// requests and coalescing at most `batch_max` per dispatch.
    pub fn new(queue_cap: usize, batch_max: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState { queue: VecDeque::new(), shutdown: false }),
            work: Condvar::new(),
            queue_cap: queue_cap.max(1),
            batch_max: batch_max.max(1),
            observations: Mutex::new(HashMap::new()),
        }
    }

    /// A scheduler that rejects every submission (capacity 0) — the
    /// backpressure path in isolation, used by tests.
    pub fn rejecting() -> Scheduler {
        let mut s = Scheduler::new(1, 1);
        s.queue_cap = 0;
        s
    }

    /// Queued-but-unserved request count.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Submits one request and blocks until its result is delivered
    /// by a worker; returns the allocated RequestId alongside the
    /// result. Admission is decided immediately: a full queue or a
    /// draining scheduler fails fast instead of blocking.
    pub fn submit(
        &self,
        matrix: Arc<RegisteredMatrix>,
        mode: Mode,
        x: Vec<f64>,
    ) -> Result<(u64, Vec<f64>), SubmitError> {
        assert_eq!(x.len(), matrix.ncols(), "request vector length");
        let done = Arc::new(Completion { slot: Mutex::new(None), ready: Condvar::new() });
        let trace = tracer();
        let rid = NEXT_RID.fetch_add(1, Ordering::Relaxed); // relaxed-ok: unique-id counter.
        let admit_ns = if trace.enabled() { trace.now_ns() } else { 0 };
        {
            let mut state = self.lock();
            if state.shutdown {
                serve_stats().reject();
                return Err(SubmitError::ShuttingDown);
            }
            if state.queue.len() >= self.queue_cap {
                serve_stats().reject();
                return Err(SubmitError::QueueFull);
            }
            state.queue.push_back(Pending {
                matrix,
                mode,
                x,
                enqueued: Instant::now(),
                rid,
                admit_ns,
                done: Arc::clone(&done),
            });
            serve_stats().admit();
            // First lifecycle stage, emitted while still holding the
            // queue lock: the worker pops under this same mutex, so
            // `admitted` is ordered before the stages it emits — the
            // `admitted-after-unlock` mutant of the `lifecycle`
            // protocol shows the race this placement prevents.
            // (record() is lock-free and allocation-free, so the
            // critical section grows by a few atomic stores.)
            if admit_ns != 0 {
                trace.record(EventKind::Stage, 0, "admitted", admit_ns, 1, rid);
            }
            self.work.notify_one();
        }
        let mut slot = done.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return match result {
                    Ok(y) => Ok((rid, y)),
                    Err(()) => Err(SubmitError::KernelFailed),
                };
            }
            slot = done.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The worker loop one engine lane donates itself to: drain
    /// batches until [`shutdown`](Scheduler::shutdown) is called and
    /// the queue is empty. Multiple lanes may run this concurrently.
    pub fn worker_loop(&self) {
        loop {
            let batch = {
                let mut state = self.lock();
                loop {
                    if !state.queue.is_empty() {
                        break pop_batch(&mut state.queue, self.batch_max);
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self.work.wait(state).unwrap_or_else(|p| p.into_inner());
                }
            };
            self.execute(batch);
        }
    }

    /// Marks the scheduler as draining: pending requests still
    /// complete, new submissions are rejected, workers exit once the
    /// queue is empty. Idempotent.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    /// Recent completed-request breakdowns for `name`, oldest first
    /// (empty when the matrix has served nothing recently).
    pub fn observations(&self, name: &str) -> Vec<Observation> {
        self.observations
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Executes one batch and delivers every result: single requests
    /// on the mode's SpMV kernel, true batches on the SpMM kernel
    /// (one matrix traversal for the whole batch). A panicking kernel
    /// is caught: the batch's requests get [`SubmitError::KernelFailed`]
    /// and the worker survives — with the lifecycle stages still
    /// closed, so timelines never dangle.
    fn execute(&self, batch: Vec<Pending>) {
        let k = batch.len();
        let trace = tracer();
        let pop_ns = if trace.enabled() { trace.now_ns() } else { 0 };
        let t_pop = Instant::now();
        if pop_ns != 0 {
            for job in &batch {
                // `queued` spans admission → batch formation; when
                // the tracer was off at admission, anchor at pop.
                let from = if job.admit_ns != 0 { job.admit_ns } else { pop_ns };
                trace.record(
                    EventKind::Stage,
                    0,
                    "queued",
                    from,
                    pop_ns.saturating_sub(from).max(1),
                    job.rid,
                );
                trace.record(EventKind::Stage, 0, "batched", pop_ns, 1, job.rid);
            }
        }
        let queue_secs: Vec<f64> =
            batch.iter().map(|j| t_pop.duration_since(j.enqueued).as_secs_f64()).collect();
        let matrix = Arc::clone(&batch[0].matrix);
        let lead_rid = batch[0].rid;
        let t_dispatch = Instant::now();
        // The engine's dispatch-tag context stamps the kernel's
        // caller-side Task/Dispatch trace events with the (lead)
        // RequestId, linking the engine timeline to this request.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            with_dispatch_tag(lead_rid, || {
                if k == 1 {
                    let job = &batch[0];
                    let (y, secs) = job.matrix.spmv_timed(&job.x, job.mode);
                    (vec![y], secs)
                } else {
                    let xs: Vec<&[f64]> = batch.iter().map(|job| job.x.as_slice()).collect();
                    matrix.spmm_multi_timed(&xs)
                }
            })
        }));
        let dispatch_secs = t_dispatch.elapsed().as_secs_f64();
        let (results, kernel_secs) = match outcome {
            Ok((ys, secs)) => (Some(ys), secs),
            // The panic payload was already reported by the default
            // panic hook; the scheduler degrades this batch to
            // KernelFailed rather than dying.
            Err(_) => (None, dispatch_secs),
        };
        if pop_ns != 0 {
            for job in &batch {
                trace.record(
                    EventKind::Stage,
                    0,
                    "dispatched",
                    pop_ns,
                    span_ns(dispatch_secs),
                    job.rid,
                );
                trace.record(EventKind::Stage, 0, "kernel", pop_ns, span_ns(kernel_secs), job.rid);
            }
        }
        let gflops = if results.is_some() && kernel_secs > 0.0 {
            2.0 * matrix.nnz() as f64 * k as f64 / kernel_secs / 1e9
        } else {
            0.0
        };
        if results.is_some() {
            if k > 1 {
                serve_stats().batch(k as u64);
            }
            matrix.observe_gflops(gflops);
        }
        match results {
            Some(ys) => {
                for ((job, y), queue) in batch.into_iter().zip(ys).zip(queue_secs) {
                    self.deliver(job, Ok(y), queue, kernel_secs, k, gflops);
                }
            }
            None => {
                for (job, queue) in batch.into_iter().zip(queue_secs) {
                    self.deliver(job, Err(()), queue, kernel_secs, k, gflops);
                }
            }
        }
    }

    /// Publishes one result and wakes its submitter. The result is
    /// stored before the wakeup, under the completion mutex — the
    /// ordering obligation mutated (and caught) by the `admission`
    /// protocol's `complete-before-result` mutant. Also the request's
    /// observability sink: final `responded` stage, histogram sample
    /// with exemplar, and the per-matrix observation ring.
    fn deliver(
        &self,
        job: Pending,
        y: Result<Vec<f64>, ()>,
        queue_seconds: f64,
        kernel_seconds: f64,
        batch: usize,
        gflops: f64,
    ) {
        let total_seconds = job.enqueued.elapsed().as_secs_f64();
        let ok = y.is_ok();
        if ok {
            serve_latency().observe_with_exemplar(
                total_seconds,
                job.rid,
                span_ns(queue_seconds),
                span_ns(kernel_seconds),
            );
            serve_stats().complete();
        } else {
            serve_stats().fail();
        }
        let trace = tracer();
        if trace.enabled() {
            trace.record(EventKind::Stage, 0, "responded", trace.now_ns(), 1, job.rid);
        }
        {
            let mut obs = self.observations.lock().unwrap_or_else(|p| p.into_inner());
            let ring = obs.entry(job.matrix.name().to_string()).or_default();
            if ring.len() >= OBSERVATION_CAP {
                ring.pop_front();
            }
            ring.push_back(Observation {
                rid: job.rid,
                batch,
                queue_seconds,
                kernel_seconds,
                total_seconds,
                gflops,
                ok,
            });
        }
        let mut slot = job.done.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(y);
        job.done.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Pops the front request plus up to `batch_max - 1` later requests
/// against the *same matrix*, preserving the relative order of
/// everything left behind. Mode is ignored for membership: the batch
/// kernel's scalar order satisfies both modes' reproducibility
/// contracts.
fn pop_batch(queue: &mut VecDeque<Pending>, batch_max: usize) -> Vec<Pending> {
    let first = queue.pop_front().expect("pop_batch on empty queue");
    let mut batch = vec![first];
    let mut rest = VecDeque::with_capacity(queue.len());
    while let Some(p) = queue.pop_front() {
        if batch.len() < batch_max && Arc::ptr_eq(&p.matrix, &batch[0].matrix) {
            batch.push(p);
        } else {
            rest.push_back(p);
        }
    }
    *queue = rest;
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MatrixRegistry;
    use spmv_sparse::{gen, Csr};

    fn two_matrices() -> (Arc<RegisteredMatrix>, Arc<RegisteredMatrix>) {
        let reg = MatrixRegistry::new(2, 1);
        let a = reg.register("sched-a", gen::banded(120, 3, 0.9, 1).unwrap()).unwrap();
        let b = reg.register("sched-b", Csr::identity(50)).unwrap();
        (a, b)
    }

    fn pending(m: &Arc<RegisteredMatrix>, tag: f64) -> Pending {
        Pending {
            matrix: Arc::clone(m),
            mode: Mode::Exact,
            x: vec![tag; m.ncols()],
            enqueued: Instant::now(),
            rid: NEXT_RID.fetch_add(1, Ordering::Relaxed),
            admit_ns: 0,
            done: Arc::new(Completion { slot: Mutex::new(None), ready: Condvar::new() }),
        }
    }

    #[test]
    fn pop_batch_coalesces_same_matrix_preserving_order() {
        let (a, b) = two_matrices();
        let mut q = VecDeque::from([
            pending(&a, 1.0),
            pending(&b, 2.0),
            pending(&a, 3.0),
            pending(&a, 4.0),
            pending(&b, 5.0),
        ]);
        let batch = pop_batch(&mut q, 8);
        // Front job's matrix (a) plus the two later a-jobs.
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|p| Arc::ptr_eq(&p.matrix, &a)));
        assert_eq!(batch.iter().map(|p| p.x[0]).collect::<Vec<_>>(), [1.0, 3.0, 4.0]);
        // The b jobs stay queued in their original order.
        assert_eq!(q.len(), 2);
        assert_eq!(q.iter().map(|p| p.x[0]).collect::<Vec<_>>(), [2.0, 5.0]);
    }

    #[test]
    fn pop_batch_respects_batch_max() {
        let (a, _) = two_matrices();
        let mut q: VecDeque<Pending> = (0..6).map(|i| pending(&a, i as f64)).collect();
        let batch = pop_batch(&mut q, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.iter().map(|p| p.x[0]).collect::<Vec<_>>(), [4.0, 5.0]);
    }

    #[test]
    fn execute_batch_delivers_bitwise_serial_results() {
        let (a, _) = two_matrices();
        let s = Scheduler::new(8, 8);
        let jobs: Vec<Pending> = (0..3).map(|i| pending(&a, (i + 1) as f64 * 0.5)).collect();
        let cells: Vec<Arc<Completion>> = jobs.iter().map(|j| Arc::clone(&j.done)).collect();
        let xs: Vec<Vec<f64>> = jobs.iter().map(|j| j.x.clone()).collect();
        s.execute(jobs);
        for (cell, x) in cells.iter().zip(&xs) {
            let y = cell
                .slot
                .lock()
                .unwrap()
                .take()
                .expect("result delivered")
                .expect("kernel succeeded");
            let mut y_ref = vec![0.0; a.nrows()];
            a.csr().spmv(x, &mut y_ref);
            for (got, want) in y.iter().zip(&y_ref) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn execute_records_observations_with_unique_rids() {
        let (a, _) = two_matrices();
        let s = Scheduler::new(8, 8);
        let jobs: Vec<Pending> = (0..3).map(|i| pending(&a, i as f64)).collect();
        let rids: Vec<u64> = jobs.iter().map(|j| j.rid).collect();
        s.execute(jobs);
        let obs = s.observations("sched-a");
        assert_eq!(obs.len(), 3);
        assert_eq!(obs.iter().map(|o| o.rid).collect::<Vec<_>>(), rids);
        for o in &obs {
            assert!(o.ok);
            assert_eq!(o.batch, 3);
            assert!(o.kernel_seconds > 0.0);
            assert!(o.total_seconds >= o.kernel_seconds);
            assert!(o.gflops > 0.0, "measured throughput feeds the roofline monitor");
        }
        assert!(s.observations("sched-b").is_empty());
        // The ring is bounded: many more completions keep only the
        // newest OBSERVATION_CAP.
        for _ in 0..OBSERVATION_CAP + 5 {
            s.execute(vec![pending(&a, 1.0)]);
        }
        assert_eq!(s.observations("sched-a").len(), OBSERVATION_CAP);
    }

    #[test]
    fn rejecting_scheduler_sheds_load() {
        let (a, _) = two_matrices();
        let s = Scheduler::rejecting();
        let before = serve_stats().rejected();
        let err = s.submit(Arc::clone(&a), Mode::Exact, vec![0.0; a.ncols()]).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        assert!(serve_stats().rejected() > before);
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let (a, _) = two_matrices();
        let s = Scheduler::new(4, 2);
        s.shutdown();
        let err = s.submit(Arc::clone(&a), Mode::Exact, vec![0.0; a.ncols()]).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        // Worker loop on a shut-down empty scheduler returns at once.
        s.worker_loop();
    }
}
