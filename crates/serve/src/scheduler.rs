//! Request scheduler: admission control, bounded-queue backpressure
//! and same-matrix batching over the shared execution engine.
//!
//! The scheduler is a classic bounded producer/consumer handshake —
//! the exact protocol model-checked as the `admission` protocol in
//! `crates/check` (see `crates/check/src/models/admission.rs`), with
//! the same structure: admission decided under the queue mutex,
//! results published *before* the completion flag, completion
//! signalled under the mutex so no wakeup is lost.
//!
//! * **Admission**: [`Scheduler::submit`] accepts a request only
//!   while the queue holds fewer than `queue_cap` pending jobs;
//!   beyond that it fails fast with [`SubmitError::QueueFull`]
//!   (surfaced as HTTP 503) instead of queueing unboundedly — the
//!   service degrades by shedding load, not by growing latency
//!   without bound. Rejections are counted in
//!   `spmv_serve_rejected_total`.
//! * **Batching**: the worker drains up to `batch_max` *same-matrix*
//!   jobs per dispatch and executes them as one multi-vector SpMM
//!   ([`spmv_kernels::SpmmKernel`]), streaming the matrix once for
//!   the whole batch. Batches form opportunistically from whatever
//!   is queued — an idle service batches nothing (no added latency),
//!   a loaded service batches aggressively (amortized bandwidth).
//!   Because the batch kernel uses scalar accumulation order, batch
//!   membership never changes results: every vector is
//!   bitwise-identical to the serial reference.
//! * **Threading**: the scheduler creates no threads. The daemon
//!   donates one `ExecEngine` lane to [`Scheduler::worker_loop`];
//!   kernel dispatches nest onto the process-global engine pools.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use spmv_telemetry::{serve_latency, serve_stats};

use crate::registry::{Mode, RegisteredMatrix};

/// Default bound on queued-but-unserved requests.
pub const DEFAULT_QUEUE_CAP: usize = 256;

/// One admitted, not-yet-completed request.
struct Pending {
    matrix: Arc<RegisteredMatrix>,
    mode: Mode,
    x: Vec<f64>,
    enqueued: Instant,
    done: Arc<Completion>,
}

/// The per-request completion cell the submitter blocks on.
struct Completion {
    slot: Mutex<Option<Vec<f64>>>,
    ready: Condvar,
}

struct SchedState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load (HTTP 503).
    QueueFull,
    /// The scheduler is draining for shutdown.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::ShuttingDown => write!(f, "scheduler shutting down"),
        }
    }
}

/// The admission-controlled, batching request scheduler.
pub struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    queue_cap: usize,
    batch_max: usize,
}

impl Scheduler {
    /// Creates a scheduler admitting at most `queue_cap` queued
    /// requests and coalescing at most `batch_max` per dispatch.
    pub fn new(queue_cap: usize, batch_max: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState { queue: VecDeque::new(), shutdown: false }),
            work: Condvar::new(),
            queue_cap: queue_cap.max(1),
            batch_max: batch_max.max(1),
        }
    }

    /// A scheduler that rejects every submission (capacity 0) — the
    /// backpressure path in isolation, used by tests.
    pub fn rejecting() -> Scheduler {
        let mut s = Scheduler::new(1, 1);
        s.queue_cap = 0;
        s
    }

    /// Queued-but-unserved request count.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Submits one request and blocks until its result is delivered
    /// by a worker. Admission is decided immediately: a full queue or
    /// a draining scheduler fails fast instead of blocking.
    pub fn submit(
        &self,
        matrix: Arc<RegisteredMatrix>,
        mode: Mode,
        x: Vec<f64>,
    ) -> Result<Vec<f64>, SubmitError> {
        assert_eq!(x.len(), matrix.ncols(), "request vector length");
        let done = Arc::new(Completion { slot: Mutex::new(None), ready: Condvar::new() });
        {
            let mut state = self.lock();
            if state.shutdown {
                serve_stats().reject();
                return Err(SubmitError::ShuttingDown);
            }
            if state.queue.len() >= self.queue_cap {
                serve_stats().reject();
                return Err(SubmitError::QueueFull);
            }
            state.queue.push_back(Pending {
                matrix,
                mode,
                x,
                enqueued: Instant::now(),
                done: Arc::clone(&done),
            });
            serve_stats().admit();
            self.work.notify_one();
        }
        let mut slot = done.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(y) = slot.take() {
                return Ok(y);
            }
            slot = done.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The worker loop one engine lane donates itself to: drain
    /// batches until [`shutdown`](Scheduler::shutdown) is called and
    /// the queue is empty. Multiple lanes may run this concurrently.
    pub fn worker_loop(&self) {
        loop {
            let batch = {
                let mut state = self.lock();
                loop {
                    if !state.queue.is_empty() {
                        break pop_batch(&mut state.queue, self.batch_max);
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self.work.wait(state).unwrap_or_else(|p| p.into_inner());
                }
            };
            execute(batch);
        }
    }

    /// Marks the scheduler as draining: pending requests still
    /// complete, new submissions are rejected, workers exit once the
    /// queue is empty. Idempotent.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Pops the front request plus up to `batch_max - 1` later requests
/// against the *same matrix*, preserving the relative order of
/// everything left behind. Mode is ignored for membership: the batch
/// kernel's scalar order satisfies both modes' reproducibility
/// contracts.
fn pop_batch(queue: &mut VecDeque<Pending>, batch_max: usize) -> Vec<Pending> {
    let first = queue.pop_front().expect("pop_batch on empty queue");
    let mut batch = vec![first];
    let mut rest = VecDeque::with_capacity(queue.len());
    while let Some(p) = queue.pop_front() {
        if batch.len() < batch_max && Arc::ptr_eq(&p.matrix, &batch[0].matrix) {
            batch.push(p);
        } else {
            rest.push_back(p);
        }
    }
    *queue = rest;
    batch
}

/// Executes one batch and delivers every result: single requests on
/// the mode's SpMV kernel, true batches on the SpMM kernel (one
/// matrix traversal for the whole batch).
fn execute(batch: Vec<Pending>) {
    let k = batch.len();
    if k == 1 {
        let job = batch.into_iter().next().expect("k == 1");
        let y = job.matrix.spmv(&job.x, job.mode);
        deliver(job, y);
        return;
    }
    let m = Arc::clone(&batch[0].matrix);
    // Separate-vector batch entry point: request vectors are read in
    // place and results come back as independent vectors, so the
    // whole batch costs one matrix traversal and zero transposes.
    let ys = {
        let xs: Vec<&[f64]> = batch.iter().map(|job| job.x.as_slice()).collect();
        m.spmm_multi(&xs)
    };
    serve_stats().batch(k as u64);
    for (job, y) in batch.into_iter().zip(ys) {
        deliver(job, y);
    }
}

/// Publishes one result and wakes its submitter. The result is
/// stored before the wakeup, under the completion mutex — the
/// ordering obligation mutated (and caught) by the `admission`
/// protocol's `complete-before-result` mutant.
fn deliver(job: Pending, y: Vec<f64>) {
    serve_latency().observe(job.enqueued.elapsed().as_secs_f64());
    serve_stats().complete();
    let mut slot = job.done.slot.lock().unwrap_or_else(|p| p.into_inner());
    *slot = Some(y);
    job.done.ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MatrixRegistry;
    use spmv_sparse::{gen, Csr};

    fn two_matrices() -> (Arc<RegisteredMatrix>, Arc<RegisteredMatrix>) {
        let reg = MatrixRegistry::new(2, 1);
        let a = reg.register("sched-a", gen::banded(120, 3, 0.9, 1).unwrap()).unwrap();
        let b = reg.register("sched-b", Csr::identity(50)).unwrap();
        (a, b)
    }

    fn pending(m: &Arc<RegisteredMatrix>, tag: f64) -> Pending {
        Pending {
            matrix: Arc::clone(m),
            mode: Mode::Exact,
            x: vec![tag; m.ncols()],
            enqueued: Instant::now(),
            done: Arc::new(Completion { slot: Mutex::new(None), ready: Condvar::new() }),
        }
    }

    #[test]
    fn pop_batch_coalesces_same_matrix_preserving_order() {
        let (a, b) = two_matrices();
        let mut q = VecDeque::from([
            pending(&a, 1.0),
            pending(&b, 2.0),
            pending(&a, 3.0),
            pending(&a, 4.0),
            pending(&b, 5.0),
        ]);
        let batch = pop_batch(&mut q, 8);
        // Front job's matrix (a) plus the two later a-jobs.
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|p| Arc::ptr_eq(&p.matrix, &a)));
        assert_eq!(batch.iter().map(|p| p.x[0]).collect::<Vec<_>>(), [1.0, 3.0, 4.0]);
        // The b jobs stay queued in their original order.
        assert_eq!(q.len(), 2);
        assert_eq!(q.iter().map(|p| p.x[0]).collect::<Vec<_>>(), [2.0, 5.0]);
    }

    #[test]
    fn pop_batch_respects_batch_max() {
        let (a, _) = two_matrices();
        let mut q: VecDeque<Pending> = (0..6).map(|i| pending(&a, i as f64)).collect();
        let batch = pop_batch(&mut q, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.iter().map(|p| p.x[0]).collect::<Vec<_>>(), [4.0, 5.0]);
    }

    #[test]
    fn execute_batch_delivers_bitwise_serial_results() {
        let (a, _) = two_matrices();
        let jobs: Vec<Pending> = (0..3).map(|i| pending(&a, (i + 1) as f64 * 0.5)).collect();
        let cells: Vec<Arc<Completion>> = jobs.iter().map(|j| Arc::clone(&j.done)).collect();
        let xs: Vec<Vec<f64>> = jobs.iter().map(|j| j.x.clone()).collect();
        execute(jobs);
        for (cell, x) in cells.iter().zip(&xs) {
            let y = cell.slot.lock().unwrap().take().expect("result delivered");
            let mut y_ref = vec![0.0; a.nrows()];
            a.csr().spmv(x, &mut y_ref);
            for (got, want) in y.iter().zip(&y_ref) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn rejecting_scheduler_sheds_load() {
        let (a, _) = two_matrices();
        let s = Scheduler::rejecting();
        let before = serve_stats().rejected();
        let err = s.submit(Arc::clone(&a), Mode::Exact, vec![0.0; a.ncols()]).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        assert!(serve_stats().rejected() > before);
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let (a, _) = two_matrices();
        let s = Scheduler::new(4, 2);
        s.shutdown();
        let err = s.submit(Arc::clone(&a), Mode::Exact, vec![0.0; a.ncols()]).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        // Worker loop on a shut-down empty scheduler returns at once.
        s.worker_loop();
    }
}
