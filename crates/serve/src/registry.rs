//! Matrix registry: the tune-once/serve-many half of the serving
//! plane.
//!
//! Registration is the expensive, once-per-matrix path: the uploaded
//! matrix is structurally validated (the same [`Validated`] witness
//! the kernels' unchecked fast paths demand), handed to the PR 6 menu
//! search for a tuned kernel selection, and lowered onto three
//! long-lived kernel objects — an **exact** kernel (scalar
//! accumulation order, bitwise-identical to the serial reference at
//! any thread count), the **tuned** menu winner (throughput path,
//! tolerance-level reproducibility), and the multi-vector **batch**
//! kernel the scheduler coalesces same-matrix requests onto. Serving
//! then costs one kernel dispatch per request (or per batch), which
//! is what amortizes the tuning investment across request volume —
//! the economics of Elafrou's lightweight selection method applied at
//! the service layer.
//!
//! Registered matrices are pinned for the process lifetime (the CSR
//! storage is leaked to `'static` so kernel plans, which borrow it,
//! can live inside shared `Arc`s with no self-referential types and
//! no unsafe code). Deregistration/eviction is an explicit non-goal
//! of this PR — a registry restart is a process restart, which is the
//! operational model of the daemon anyway. ROADMAP tracks dynamic
//! matrix lifecycles.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use spmv_kernels::baseline::{CsrKernel, InnerLoop};
use spmv_kernels::{build_micro_kernel, Schedule, SpmmKernel, SpmvKernel};
use spmv_machine::MachineModel;
use spmv_sparse::{Csr, Validated};
use spmv_telemetry::roofline::{self, RooflineId};
use spmv_tuner::menu;
use spmv_tuner::KernelPlan;

/// Longest accepted matrix name.
const MAX_NAME_LEN: usize = 64;

/// One registered, tuned, ready-to-serve matrix.
pub struct RegisteredMatrix {
    name: String,
    a: &'static Csr,
    /// Bitwise-reproducible kernel: scalar accumulation order under
    /// the baseline nnz-balanced row partition.
    exact: Box<dyn SpmvKernel>,
    /// The menu-search winner (throughput path).
    tuned: Box<dyn SpmvKernel>,
    /// Multi-vector kernel for coalesced batches (scalar order, so
    /// batch results are bitwise-serial in every mode).
    batch: SpmmKernel<'static>,
    /// The tuner's decision record for `/v1/matrices` introspection.
    plan: KernelPlan,
    nthreads: usize,
    /// Roofline-monitor slot for live attainment tracking; `None`
    /// when the monitor's slot table was full at registration.
    roofline: Option<RooflineId>,
}

impl RegisteredMatrix {
    /// Matrix name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Columns (the request vector length).
    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.a.nnz()
    }

    /// The underlying matrix (serial reference computations in tests).
    pub fn csr(&self) -> &Csr {
        self.a
    }

    /// The tuner's winning plan.
    pub fn plan(&self) -> &KernelPlan {
        &self.plan
    }

    /// Thread count the kernels were planned for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// One SpMV in the requested mode. `x.len() == ncols`.
    pub fn spmv(&self, x: &[f64], mode: Mode) -> Vec<f64> {
        self.spmv_timed(x, mode).0
    }

    /// [`spmv`](RegisteredMatrix::spmv), also reporting the kernel's
    /// busy seconds (slowest thread — the dispatch's critical path),
    /// which the scheduler feeds to the roofline monitor and the
    /// request timeline.
    pub fn spmv_timed(&self, x: &[f64], mode: Mode) -> (Vec<f64>, f64) {
        let mut y = vec![0.0; self.nrows()];
        let kernel = match mode {
            Mode::Exact => &self.exact,
            Mode::Tuned => &self.tuned,
        };
        let times = kernel.run_timed(x, &mut y);
        (y, times.max())
    }

    /// One coalesced batch: `x` holds `k` interleaved request vectors
    /// (`x[col * k + j]`), the result holds `k` interleaved outputs.
    /// Scalar accumulation order — bitwise-serial per vector.
    pub fn spmm(&self, x: &[f64], k: usize) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows() * k];
        self.batch.run(x, &mut y, k);
        y
    }

    /// One coalesced batch over *separate* request vectors: each
    /// `xs[j]` is read in place and its result returned as an
    /// independent vector, so the scheduler pays no interleave /
    /// deinterleave passes. Scalar accumulation order —
    /// bitwise-serial per vector.
    pub fn spmm_multi(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        self.spmm_multi_timed(xs).0
    }

    /// [`spmm_multi`](RegisteredMatrix::spmm_multi), also reporting
    /// the batch kernel's busy seconds (slowest thread).
    pub fn spmm_multi_timed(&self, xs: &[&[f64]]) -> (Vec<Vec<f64>>, f64) {
        let mut ys: Vec<Vec<f64>> = xs.iter().map(|_| vec![0.0; self.nrows()]).collect();
        let times = self.batch.run_multi(xs, &mut ys);
        (ys, times.max())
    }

    /// Folds one dispatch's measured throughput into this matrix's
    /// roofline-attainment EWMA (no-op if the monitor was full at
    /// registration).
    pub fn observe_gflops(&self, gflops: f64) {
        if let Some(id) = self.roofline {
            roofline::monitor().observe(id, gflops);
        }
    }
}

impl fmt::Debug for RegisteredMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisteredMatrix")
            .field("name", &self.name)
            .field("nrows", &self.nrows())
            .field("ncols", &self.ncols())
            .field("nnz", &self.nnz())
            .field("kernel", &self.plan.entry.id())
            .finish()
    }
}

/// Which kernel serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Scalar-order kernel; results are bitwise-identical to the
    /// serial reference regardless of thread count or batching.
    Exact,
    /// The menu-tuned kernel; fastest, reproducible only to the
    /// workspace verification tolerance.
    Tuned,
}

impl Mode {
    /// Parses the `mode` query parameter (`None`/empty = exact).
    pub fn parse(s: Option<&str>) -> Result<Mode, String> {
        match s {
            None | Some("") | Some("exact") => Ok(Mode::Exact),
            Some("tuned") => Ok(Mode::Tuned),
            Some(other) => Err(format!("unknown mode {other:?} (expected exact|tuned)")),
        }
    }
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// Name is empty, too long, or contains characters outside
    /// `[A-Za-z0-9._-]`.
    InvalidName(String),
    /// A matrix with this name is already registered.
    Duplicate(String),
    /// The matrix failed structural validation.
    Invalid(String),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::InvalidName(n) => write!(f, "invalid matrix name {n:?}"),
            RegisterError::Duplicate(n) => write!(f, "matrix {n:?} already registered"),
            RegisterError::Invalid(e) => write!(f, "matrix failed validation: {e}"),
        }
    }
}

/// The concurrent name → matrix map. Lookups clone an `Arc`;
/// registration holds the lock only around the map insert, not around
/// tuning.
#[derive(Default)]
pub struct MatrixRegistry {
    matrices: Mutex<HashMap<String, Arc<RegisteredMatrix>>>,
    /// Profiling reps per menu-search candidate (1 in tests for
    /// speed, higher for stable production selections).
    tune_reps: usize,
    nthreads: usize,
}

impl MatrixRegistry {
    /// Creates a registry whose kernels are planned for `nthreads`
    /// and tuned with `tune_reps` profiling reps per candidate.
    pub fn new(nthreads: usize, tune_reps: usize) -> MatrixRegistry {
        MatrixRegistry {
            matrices: Mutex::new(HashMap::new()),
            tune_reps: tune_reps.max(1),
            nthreads: nthreads.max(1),
        }
    }

    /// Validates, tunes and registers a matrix under `name`.
    ///
    /// The tuning search runs outside the registry lock, so a slow
    /// registration does not block serving lookups; two concurrent
    /// registrations under one name race to the insert and the loser
    /// gets [`RegisterError::Duplicate`].
    pub fn register(&self, name: &str, a: Csr) -> Result<Arc<RegisteredMatrix>, RegisterError> {
        if !valid_name(name) {
            return Err(RegisterError::InvalidName(name.to_string()));
        }
        if self.lock().contains_key(name) {
            return Err(RegisterError::Duplicate(name.to_string()));
        }
        // Validation witness up front: a matrix that fails here never
        // reaches a kernel, so every kernel below runs its parallel
        // fast path (they re-derive their own witnesses internally).
        if let Err(e) = Validated::new(&a) {
            return Err(RegisterError::Invalid(e.to_string()));
        }
        // Pin the storage for the process lifetime; see module docs.
        let a: &'static Csr = Box::leak(Box::new(a));
        let machine = MachineModel::host();
        let (plan, _trace) = menu::search_or_cached(a, &machine, self.nthreads, self.tune_reps);
        // Feed the live attainment monitor the simulated ceiling the
        // tuner selected against; measured per-dispatch throughput is
        // folded in by the scheduler via `observe_gflops`.
        let bound = menu::roofline_bound_gflops(a, &machine, plan.entry);
        let roofline = roofline::monitor().register(name, bound);
        let tuned = build_micro_kernel(a, plan.entry, self.nthreads).kernel;
        let exact: Box<dyn SpmvKernel> = Box::new(CsrKernel::with_options(
            a,
            self.nthreads,
            Schedule::NnzBalanced,
            InnerLoop::Scalar,
        ));
        let batch = SpmmKernel::new(a, self.nthreads);
        let matrix = Arc::new(RegisteredMatrix {
            name: name.to_string(),
            a,
            exact,
            tuned,
            batch,
            plan,
            nthreads: self.nthreads,
            roofline,
        });
        match self.lock().entry(name.to_string()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(RegisterError::Duplicate(name.to_string()))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Arc::clone(&matrix));
                Ok(matrix)
            }
        }
    }

    /// Looks up a registered matrix.
    pub fn get(&self, name: &str) -> Option<Arc<RegisteredMatrix>> {
        self.lock().get(name).cloned()
    }

    /// Registered matrices, sorted by name.
    pub fn list(&self) -> Vec<Arc<RegisteredMatrix>> {
        let mut all: Vec<_> = self.lock().values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Registered matrix count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no matrix is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<RegisteredMatrix>>> {
        self.matrices.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Names are path segments in the service URLs, so keep them to a
/// conservative token alphabet.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    fn registry() -> MatrixRegistry {
        MatrixRegistry::new(2, 1)
    }

    #[test]
    fn register_then_serve_exact_is_bitwise_serial() {
        let reg = registry();
        let a = gen::banded(200, 4, 0.9, 3).unwrap();
        let mut y_ref = vec![0.0; a.nrows()];
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
        a.spmv(&x, &mut y_ref);

        let m = reg.register("banded", a).expect("register");
        assert_eq!(m.nrows(), 200);
        let y = m.spmv(&x, Mode::Exact);
        for (got, want) in y.iter().zip(&y_ref) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // Tuned mode serves too (tolerance check only).
        let y_tuned = m.spmv(&x, Mode::Tuned);
        for (got, want) in y_tuned.iter().zip(&y_ref) {
            assert!((got - want).abs() <= 1e-10 * want.abs().max(1.0));
        }
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let reg = registry();
        reg.register("a", Csr::identity(8)).expect("first");
        assert_eq!(
            reg.register("a", Csr::identity(8)).unwrap_err(),
            RegisterError::Duplicate("a".to_string())
        );
        assert!(matches!(reg.register("", Csr::identity(4)), Err(RegisterError::InvalidName(_))));
        assert!(matches!(
            reg.register("has space", Csr::identity(4)),
            Err(RegisterError::InvalidName(_))
        ));
        assert!(matches!(
            reg.register(&"x".repeat(65), Csr::identity(4)),
            Err(RegisterError::InvalidName(_))
        ));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn lookup_and_list() {
        let reg = registry();
        assert!(reg.is_empty());
        assert!(reg.get("missing").is_none());
        reg.register("b", Csr::identity(4)).unwrap();
        reg.register("a", Csr::identity(4)).unwrap();
        let names: Vec<_> = reg.list().iter().map(|m| m.name().to_string()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(reg.get("a").is_some());
    }

    #[test]
    fn batch_path_is_bitwise_serial() {
        let reg = registry();
        let a = gen::powerlaw(300, 5, 2.0, 9).unwrap();
        let serial = a.clone();
        let m = reg.register("pl", a).unwrap();
        let k = 3;
        let xs: Vec<Vec<f64>> =
            (0..k).map(|j| (0..m.ncols()).map(|i| ((i + j) as f64).cos()).collect()).collect();
        let mut x_block = vec![0.0; m.ncols() * k];
        for (j, x) in xs.iter().enumerate() {
            for (i, &v) in x.iter().enumerate() {
                x_block[i * k + j] = v;
            }
        }
        let y_block = m.spmm(&x_block, k);
        for (j, x) in xs.iter().enumerate() {
            let mut y_ref = vec![0.0; m.nrows()];
            serial.spmv(x, &mut y_ref);
            for i in 0..m.nrows() {
                assert_eq!(y_block[i * k + j].to_bits(), y_ref[i].to_bits());
            }
        }
    }

    #[test]
    fn registration_feeds_the_roofline_monitor() {
        let reg = registry();
        let a = gen::banded(150, 3, 0.9, 5).unwrap();
        let m = reg.register("roofline-reg-probe", a).expect("register");
        let s = roofline::monitor().get("roofline-reg-probe").expect("monitored");
        assert!(s.bound_gflops > 0.0, "tuner bound is a positive ceiling");
        assert_eq!(s.samples, 0, "no dispatches yet");
        m.observe_gflops(s.bound_gflops * 0.5);
        let s = roofline::monitor().get("roofline-reg-probe").unwrap();
        assert_eq!(s.samples, 1);
        assert!((s.attainment - 0.5).abs() < 1e-9, "attainment {}", s.attainment);
    }

    #[test]
    fn timed_paths_report_kernel_seconds() {
        let reg = registry();
        let a = gen::banded(200, 4, 0.9, 3).unwrap();
        let m = reg.register("timed", a).unwrap();
        let x = vec![1.0; m.ncols()];
        let (y, secs) = m.spmv_timed(&x, Mode::Exact);
        assert_eq!(y.len(), m.nrows());
        assert!(secs > 0.0, "busy seconds must be positive, got {secs}");
        let (ys, bsecs) = m.spmm_multi_timed(&[&x, &x]);
        assert_eq!(ys.len(), 2);
        assert!(bsecs > 0.0);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse(None), Ok(Mode::Exact));
        assert_eq!(Mode::parse(Some("exact")), Ok(Mode::Exact));
        assert_eq!(Mode::parse(Some("tuned")), Ok(Mode::Tuned));
        assert!(Mode::parse(Some("fast")).is_err());
    }
}
