//! # spmv-serve
//!
//! SpMV-as-a-service: the serving plane that turns the workspace's
//! tune-once pipeline into a serve-many daemon (DESIGN.md §12).
//!
//! The paper's profile → classify → optimize method front-loads cost
//! (profiling runs, format conversion, menu search) that only pays
//! off when the tuned kernel is reused — Elafrou's lightweight
//! selection argument. This crate is that reuse loop as a service:
//!
//! * [`registry`] — upload/register → validate ([`Validated`]
//!   witnesses) → tune once (PR 6 menu search) → serve many. Kernels
//!   are built once per matrix and pinned for the process lifetime;
//! * [`scheduler`] — admission control with bounded-queue
//!   backpressure (overload sheds with HTTP 503 instead of growing
//!   latency), plus same-matrix request coalescing onto the
//!   multi-vector SpMM kernel (one matrix traversal per batch, after
//!   Nagasaka & Azad's KNL sparse products). Its producer/consumer
//!   handshake is model-checked as the `admission` protocol in
//!   `crates/check`;
//! * [`service`] — the HTTP routes, mounted on the telemetry crate's
//!   exposition server so this crate contains no socket code.
//!
//! The crate creates no threads: the daemon (`spmv-metricsd
//! --serve`) donates `ExecEngine` lanes to the serve loops and the
//! scheduler worker, and kernel dispatches nest onto the
//! process-global engine pools. Serving latency and admission
//! outcomes are exported through `spmv-telemetry`'s registry
//! (`spmv_serve_*` metrics, including the p50/p99 latency histogram
//! the load generator reports). Every admitted request additionally
//! carries a RequestId through a six-stage span timeline in the trace
//! ring (`admitted → queued → batched → dispatched → kernel →
//! responded`), surfaces as a latency-bucket exemplar on `/metrics`,
//! and feeds the per-matrix roofline-attainment monitor queried via
//! `GET /v1/observe/{name}` (DESIGN.md §13).
//!
//! [`Validated`]: spmv_sparse::Validated

pub mod registry;
pub mod scheduler;
pub mod service;

pub use registry::{MatrixRegistry, Mode, RegisterError, RegisteredMatrix};
pub use scheduler::{Observation, Scheduler, SubmitError, DEFAULT_QUEUE_CAP};
pub use service::{build_x, digest, SpmvService};
