//! # spmv-tune
//!
//! Facade crate of the `spmv-tune` workspace: a matrix- and
//! architecture-adaptive SpMV optimizer reproducing
//! *Elafrou, Goumas, Koziris — "Performance Analysis and Optimization
//! of Sparse Matrix-Vector Multiplication on Modern Multi- and
//! Many-Core Processors" (IPDPS 2017)*.
//!
//! The workspace re-exported here:
//!
//! * [`sparse`] — formats ([`sparse::Csr`], delta-compressed CSR,
//!   long-row decomposition, ELL hybrid), generators, MatrixMarket
//!   I/O, structural features (paper Table 2);
//! * [`machine`] — machine models with KNC / KNL / Broadwell presets
//!   (paper Table 1), cache simulator, STREAM microbenchmark;
//! * [`kernels`] — parallel SpMV kernels: baseline CSR plus the
//!   optimization pool (vectorization, software prefetch, index
//!   compression, decomposition, scheduling policies);
//! * [`sim`] — deterministic performance simulator producing the
//!   per-class bounds (`P_MB`, `P_ML`, `P_IMB`, `P_CMP`, `P_peak`) of
//!   paper §III-B;
//! * [`mod@reference`] — MKL-like comparison baselines (plain CSR and an
//!   Inspector-Executor proxy);
//! * [`tuner`] — the paper's contribution: bottleneck classification
//!   (profile-guided rules and a CART feature-guided classifier) and
//!   the end-to-end adaptive optimizer;
//! * [`solvers`] — CG / BiCGSTAB / GMRES iterative solvers used for
//!   the amortization study (paper §IV-D).
//!
//! ## Quickstart
//!
//! ```
//! use spmv_tune::prelude::*;
//!
//! // A small FEM-like matrix.
//! let a = spmv_tune::sparse::gen::banded(2_000, 8, 0.9, 42).unwrap();
//!
//! // Pick a platform (here: Knights Landing with flat HBM).
//! let machine = MachineModel::knl();
//!
//! // Let the feature-guided optimizer pick optimizations.
//! let optimizer = Optimizer::feature_guided(&machine);
//! let tuned = optimizer.optimize(&a);
//!
//! // Run SpMV through the tuned kernel.
//! let x = vec![1.0; a.ncols()];
//! let mut y = vec![0.0; a.nrows()];
//! tuned.kernel().run(&x, &mut y);
//! # assert!(y.iter().all(|v| v.is_finite()));
//! ```

pub use spmv_kernels as kernels;
pub use spmv_machine as machine;
pub use spmv_ref as reference;
pub use spmv_sim as sim;
pub use spmv_solvers as solvers;
pub use spmv_sparse as sparse;
pub use spmv_tuner as tuner;

/// Commonly used items, importable with one `use`.
pub mod prelude {
    pub use spmv_kernels::schedule::Schedule;
    pub use spmv_kernels::variant::{KernelVariant, Optimization};
    pub use spmv_machine::model::MachineModel;
    pub use spmv_sparse::{Coo, Csr, DecomposedCsr, DeltaCsr, EllHybrid, FeatureVector};
    pub use spmv_tuner::class::{Bottleneck, ClassSet};
    pub use spmv_tuner::optimizer::{Optimizer, TunedSpmv};
}
