//! `spmvtune` — command-line front-end to the adaptive SpMV optimizer.
//!
//! ```text
//! spmvtune suite                         list built-in matrix presets
//! spmvtune analyze <INPUT> [--machine M] spy plot + features + bounds + classes
//! spmvtune bench   <INPUT>               time every kernel variant on this host
//! spmvtune solve   <INPUT> [--solver S]  tuned iterative solve (cg|bicgstab|gmres)
//!
//! INPUT:  path to a MatrixMarket .mtx file,
//!         preset:NAME[:SCALE]  (a paper-suite preset, e.g. preset:rajat30:0.1)
//! M:      knc | knl | broadwell | host   (default host)
//! ```

use std::process::ExitCode;

use spmv_tune::machine::MachineModel;
use spmv_tune::prelude::*;
use spmv_tune::sim::bounds::collect_bounds;
use spmv_tune::sim::cost::CostModel;
use spmv_tune::sim::profile::MatrixProfile;
use spmv_tune::sparse::gen::suite::{suite_by_name, SUITE};
use spmv_tune::sparse::spy::spy;
use spmv_tune::tuner::profile::ProfileClassifier;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "suite" => cmd_suite(),
        "analyze" => cmd_analyze(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "solve" => cmd_solve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:
  spmvtune suite
  spmvtune analyze <INPUT> [--machine knc|knl|broadwell|host]
  spmvtune bench   <INPUT>
  spmvtune solve   <INPUT> [--solver cg|bicgstab|gmres]

INPUT is a MatrixMarket file path or preset:NAME[:SCALE]
(run `spmvtune suite` for preset names)"
}

/// Parses `--flag value` style options out of an argument list.
fn option<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str())
}

fn parse_machine(args: &[String]) -> Result<MachineModel, String> {
    match option(args, "--machine").unwrap_or("host") {
        "knc" => Ok(MachineModel::knc()),
        "knl" => Ok(MachineModel::knl()),
        "broadwell" | "bdw" => Ok(MachineModel::broadwell()),
        "host" => Ok(MachineModel::host()),
        other => Err(format!("unknown machine {other:?}")),
    }
}

fn load_input(args: &[String]) -> Result<(String, Csr), String> {
    let Some(input) = args.first() else {
        return Err("missing INPUT argument".into());
    };
    if let Some(rest) = input.strip_prefix("preset:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or_default();
        let scale: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|_| format!("bad preset scale {s:?}"))?,
            None => 0.25,
        };
        let preset = suite_by_name(name)
            .ok_or_else(|| format!("unknown preset {name:?} (see `spmvtune suite`)"))?;
        let m = preset.generate(scale).map_err(|e| e.to_string())?;
        Ok((format!("{name} (scale {scale})"), m))
    } else {
        let m = spmv_tune::sparse::mm::read_csr_file(input).map_err(|e| e.to_string())?;
        Ok((input.clone(), m))
    }
}

fn cmd_suite() -> Result<(), String> {
    println!("{:<18} {:>10} {:>12}  archetype", "preset", "paper N", "paper NNZ");
    for m in SUITE {
        println!("{:<18} {:>10} {:>12}  {:?}", m.name, m.paper_n, m.paper_nnz, m.archetype);
    }
    println!("\nuse as: spmvtune analyze preset:NAME[:SCALE]");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (name, a) = load_input(args)?;
    let machine = parse_machine(args)?;
    println!("matrix {name}: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());
    println!("{}", spy(&a, 60, 24));

    let fv = FeatureVector::extract(&a, machine.llc_bytes(), machine.line_elems());
    println!("structural features (paper Table 2):");
    println!(
        "  nnz/row: min {} max {} avg {:.1} sd {:.1}",
        fv.nnz_min, fv.nnz_max, fv.nnz_avg, fv.nnz_sd
    );
    println!("  bandwidth: avg {:.1} sd {:.1}", fv.bw_avg, fv.bw_sd);
    println!(
        "  scatter avg {:.3}, clustering avg {:.3}, misses avg {:.2}",
        fv.scatter_avg, fv.clustering_avg, fv.misses_avg
    );
    println!(
        "  working set {} LLC of {}",
        if fv.size_fits_llc > 0.5 { "fits" } else { "exceeds" },
        machine.name
    );

    let model = CostModel::new(machine.clone());
    let profile = MatrixProfile::analyze(&a, &machine);
    let bounds = collect_bounds(&model, &profile);
    println!("\nsimulated bounds on {} (GFLOP/s): {}", machine.name, bounds.summary());

    let classes = ProfileClassifier::default().classify(&bounds);
    let variant = classes.to_variant(&fv);
    println!("bottleneck classes: {classes}");
    println!("selected optimizations: {variant}");
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    use spmv_tune::kernels::variant::{build_kernel, KernelVariant};
    use std::time::Instant;
    let (name, a) = load_input(args)?;
    let nthreads = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!("benchmarking {name} on this host ({nthreads} threads), 10 reps each:");
    let x = vec![1.0f64; a.ncols()];
    let mut y = vec![0.0f64; a.nrows()];
    let mut variants = vec![KernelVariant::BASELINE];
    variants.extend(KernelVariant::singles_and_pairs());
    let flops = 2.0 * a.nnz() as f64;
    let mut best = (KernelVariant::BASELINE, 0.0f64);
    for v in variants {
        let built = build_kernel(&a, v, nthreads);
        built.kernel.run(&x, &mut y); // warm-up
        let mut t = f64::INFINITY;
        for _ in 0..10 {
            let t0 = Instant::now();
            built.kernel.run(&x, &mut y);
            t = t.min(t0.elapsed().as_secs_f64());
        }
        let gf = flops / t / 1e9;
        if gf > best.1 {
            best = (v, gf);
        }
        println!(
            "  {:<24} {:>8.2} GFLOP/s  (prep {:>7.2} ms)",
            v.to_string(),
            gf,
            built.prep_seconds * 1e3
        );
    }
    println!("best: {} at {:.2} GFLOP/s", best.0, best.1);
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    use spmv_tune::solvers::{bicgstab, cg, gmres, Jacobi};
    let (name, a) = load_input(args)?;
    if a.nrows() != a.ncols() {
        return Err("solve requires a square matrix".into());
    }
    let machine = MachineModel::host();
    let tuned = Optimizer::feature_guided(&machine).optimize(&a);
    println!(
        "{name}: classes {}, optimizations {}, setup {:.1} ms",
        tuned.classes(),
        tuned.variant(),
        tuned.prep_seconds * 1e3
    );
    let n = a.nrows();
    let b = vec![1.0f64; n];
    let mut x = vec![0.0f64; n];
    let m = Jacobi::new(&a);
    let kernel = tuned.kernel();
    let solver = option(args, "--solver").unwrap_or("bicgstab");
    let stats = match solver {
        "cg" => cg(&kernel, &b, &mut x, Some(&m), 1e-8, 10_000),
        "bicgstab" => bicgstab(&kernel, &b, &mut x, Some(&m), 1e-8, 10_000),
        "gmres" => gmres(&kernel, &b, &mut x, Some(&m), 30, 1e-8, 10_000),
        other => return Err(format!("unknown solver {other:?}")),
    };
    println!(
        "{solver}: {} iterations, relative residual {:.2e}, converged: {}",
        stats.iterations, stats.residual, stats.converged
    );
    Ok(())
}
