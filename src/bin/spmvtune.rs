//! `spmvtune` — command-line front-end to the adaptive SpMV optimizer.
//!
//! ```text
//! spmvtune suite                         list built-in matrix presets
//! spmvtune analyze <INPUT> [--machine M] spy plot + features + bounds + classes
//! spmvtune explain <INPUT> [--machine M] classifier decision trace as a table
//! spmvtune bench   <INPUT>               time every kernel variant on this host
//! spmvtune solve   <INPUT> [--solver S]  tuned iterative solve (cg|bicgstab|gmres)
//!
//! INPUT:  path to a MatrixMarket .mtx file,
//!         preset:NAME[:SCALE]  (a paper-suite preset, e.g. preset:rajat30:0.1)
//! M:      knc | knl | broadwell | host   (default host)
//! ```

use std::process::ExitCode;

use spmv_tune::machine::MachineModel;
use spmv_tune::prelude::*;
use spmv_tune::sim::bounds::collect_bounds;
use spmv_tune::sim::cost::CostModel;
use spmv_tune::sim::profile::MatrixProfile;
use spmv_tune::sparse::gen::suite::{suite_by_name, SUITE};
use spmv_tune::sparse::spy::spy;
use spmv_tune::tuner::profile::ProfileClassifier;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "suite" => cmd_suite(),
        "analyze" => cmd_analyze(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "solve" => cmd_solve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:
  spmvtune suite
  spmvtune analyze <INPUT> [--machine knc|knl|broadwell|host]
  spmvtune explain <INPUT> [--machine knc|knl|broadwell|host]
  spmvtune bench   <INPUT>
  spmvtune solve   <INPUT> [--solver cg|bicgstab|gmres]

INPUT is a MatrixMarket file path or preset:NAME[:SCALE]
(run `spmvtune suite` for preset names)"
}

/// Parses `--flag value` style options out of an argument list.
fn option<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str())
}

fn parse_machine(args: &[String]) -> Result<MachineModel, String> {
    match option(args, "--machine").unwrap_or("host") {
        "knc" => Ok(MachineModel::knc()),
        "knl" => Ok(MachineModel::knl()),
        "broadwell" | "bdw" => Ok(MachineModel::broadwell()),
        "host" => Ok(MachineModel::host()),
        other => Err(format!("unknown machine {other:?}")),
    }
}

fn load_input(args: &[String]) -> Result<(String, Csr), String> {
    let Some(input) = args.first() else {
        return Err("missing INPUT argument".into());
    };
    if let Some(rest) = input.strip_prefix("preset:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or_default();
        let scale: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|_| format!("bad preset scale {s:?}"))?,
            None => 0.25,
        };
        let preset = suite_by_name(name)
            .ok_or_else(|| format!("unknown preset {name:?} (see `spmvtune suite`)"))?;
        let m = preset.generate(scale).map_err(|e| e.to_string())?;
        Ok((format!("{name} (scale {scale})"), m))
    } else {
        let m = spmv_tune::sparse::mm::read_csr_file(input).map_err(|e| e.to_string())?;
        Ok((input.clone(), m))
    }
}

fn cmd_suite() -> Result<(), String> {
    println!("{:<18} {:>10} {:>12}  archetype", "preset", "paper N", "paper NNZ");
    for m in SUITE {
        println!("{:<18} {:>10} {:>12}  {:?}", m.name, m.paper_n, m.paper_nnz, m.archetype);
    }
    println!("\nuse as: spmvtune analyze preset:NAME[:SCALE]");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (name, a) = load_input(args)?;
    let machine = parse_machine(args)?;
    println!("matrix {name}: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());
    println!("{}", spy(&a, 60, 24));

    let fv = FeatureVector::extract(&a, machine.llc_bytes(), machine.line_elems());
    println!("structural features (paper Table 2):");
    println!(
        "  nnz/row: min {} max {} avg {:.1} sd {:.1}",
        fv.nnz_min, fv.nnz_max, fv.nnz_avg, fv.nnz_sd
    );
    println!("  bandwidth: avg {:.1} sd {:.1}", fv.bw_avg, fv.bw_sd);
    println!(
        "  scatter avg {:.3}, clustering avg {:.3}, misses avg {:.2}",
        fv.scatter_avg, fv.clustering_avg, fv.misses_avg
    );
    println!(
        "  working set {} LLC of {}",
        if fv.size_fits_llc > 0.5 { "fits" } else { "exceeds" },
        machine.name
    );

    let model = CostModel::new(machine.clone());
    let profile = MatrixProfile::analyze(&a, &machine);
    let bounds = collect_bounds(&model, &profile);
    println!("\nsimulated bounds on {} (GFLOP/s): {}", machine.name, bounds.summary());

    let classes = ProfileClassifier::default().classify(&bounds);
    let variant = classes.to_variant(&fv);
    println!("bottleneck classes: {classes}");
    println!("selected optimizations: {variant}");
    Ok(())
}

/// Renders the profile-guided classifier's decision trace for one
/// matrix as a human-readable table: every measured bound, every
/// Fig. 4 rule with the ratio it computed and the threshold it was
/// compared against, and whether the rule fired.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (name, a) = load_input(args)?;
    let machine = parse_machine(args)?;
    let fv = FeatureVector::extract(&a, machine.llc_bytes(), machine.line_elems());
    let model = CostModel::new(machine.clone());
    let profile = MatrixProfile::analyze(&a, &machine);
    let b = collect_bounds(&model, &profile);
    let clf = ProfileClassifier::default();
    let (classes, trace) = clf.classify_traced(&b);
    let t = clf.thresholds;

    println!("classifier decision trace for {name} on {}", machine.name);
    println!("\nmeasured bounds (GFLOP/s):");
    let rows = [
        ("P_CSR", b.p_csr, "baseline parallel CSR"),
        ("P_MB", b.p_mb, "memory-bandwidth bound"),
        ("P_ML", b.p_ml, "memory-latency bound (regularised x accesses)"),
        ("P_IMB", b.p_imb, "load-balance bound (median-thread time)"),
        ("P_CMP", b.p_cmp, "computation bound"),
        ("P_PEAK", b.p_peak, "machine peak"),
    ];
    for (label, value, meaning) in rows {
        println!("  {label:<7} {value:>9.2}   {meaning}");
    }

    // Pull the ratios from the classify_traced decision trace so this
    // output shows exactly what the classifier compared, not a
    // recomputation that could drift from it.
    let ratio = |key: &str| {
        trace
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("decision trace is missing {key:?}"))
    };
    let ml_ratio = ratio("ml_ratio")?;
    let imb_ratio = ratio("imb_ratio")?;
    let fired = |yes: bool| if yes { "FIRED" } else { "-" };

    let mb_saturated = b.p_csr >= t.mb_approx * b.p_mb;
    let mb_window = b.p_mb < b.p_cmp && b.p_cmp < b.p_peak;
    println!("\nrules (paper Fig. 4; T_ML = {}, T_IMB = {}):", t.t_ml, t.t_imb);
    println!("  {:<5} {:<32} {:>18} {:>11}   fired", "class", "condition", "measured", "threshold");
    println!(
        "  {:<5} {:<32} {:>18.3} {:>11}   {}",
        "IMB",
        "P_IMB / P_CSR > T_IMB",
        imb_ratio,
        format!("> {}", t.t_imb),
        fired(classes.contains(Bottleneck::IMB)),
    );
    println!(
        "  {:<5} {:<32} {:>18.3} {:>11}   {}",
        "ML",
        "P_ML / P_CSR > T_ML",
        ml_ratio,
        format!("> {}", t.t_ml),
        fired(classes.contains(Bottleneck::ML)),
    );
    println!(
        "  {:<5} {:<32} {:>18} {:>11}   {}",
        "MB",
        "P_CSR >= mb_approx * P_MB",
        format!("{:.2} vs {:.2}", b.p_csr, t.mb_approx * b.p_mb),
        format!("sat: {}", if mb_saturated { "yes" } else { "no" }),
        fired(classes.contains(Bottleneck::MB)),
    );
    println!(
        "  {:<5} {:<32} {:>18} {:>11}",
        "",
        "  and P_MB < P_CMP < P_PEAK",
        format!("{:.1} / {:.1} / {:.1}", b.p_mb, b.p_cmp, b.p_peak),
        format!("win: {}", if mb_window { "yes" } else { "no" }),
    );
    println!(
        "  {:<5} {:<32} {:>18} {:>11}   {}",
        "CMP",
        "P_MB > P_CMP or P_CMP > P_PEAK",
        format!("{:.1} / {:.1} / {:.1}", b.p_mb, b.p_cmp, b.p_peak),
        "see cond",
        fired(classes.contains(Bottleneck::CMP)),
    );

    let traced_classes = trace.get("classes").and_then(|v| v.as_str()).unwrap_or("?");
    println!("\nbottleneck classes: {traced_classes}");
    println!("selected optimizations: {}", classes.to_variant(&fv));

    // Microkernel menu search (DESIGN.md §11): which explicit-SIMD
    // row kernel the auto-tuner picks for this matrix — candidates
    // bound-pruned with the selected machine model, survivors timed
    // on this host's thread pool.
    let nthreads = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let (_, menu) = spmv_tune::tuner::menu::search_or_cached(&a, &machine, nthreads, 3);
    println!("\nmicrokernel menu for {name} ({nthreads} threads):");
    print!("{}", menu.render_text());
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    use spmv_tune::kernels::variant::{build_kernel, KernelVariant};
    use std::time::Instant;
    let (name, a) = load_input(args)?;
    let nthreads = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!("benchmarking {name} on this host ({nthreads} threads), 10 reps each:");
    let x = vec![1.0f64; a.ncols()];
    let mut y = vec![0.0f64; a.nrows()];
    let mut variants = vec![KernelVariant::BASELINE];
    variants.extend(KernelVariant::singles_and_pairs());
    let flops = 2.0 * a.nnz() as f64;
    let mut best = (KernelVariant::BASELINE, 0.0f64);
    for v in variants {
        let built = build_kernel(&a, v, nthreads);
        built.kernel.run(&x, &mut y); // warm-up
        let mut t = f64::INFINITY;
        for _ in 0..10 {
            let t0 = Instant::now();
            built.kernel.run(&x, &mut y);
            t = t.min(t0.elapsed().as_secs_f64());
        }
        let gf = flops / t / 1e9;
        if gf > best.1 {
            best = (v, gf);
        }
        println!(
            "  {:<24} {:>8.2} GFLOP/s  (prep {:>7.2} ms)",
            v.to_string(),
            gf,
            built.prep_seconds * 1e3
        );
    }
    println!("best: {} at {:.2} GFLOP/s", best.0, best.1);
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    use spmv_tune::solvers::{bicgstab, cg, gmres, Jacobi};
    let (name, a) = load_input(args)?;
    if a.nrows() != a.ncols() {
        return Err("solve requires a square matrix".into());
    }
    let machine = MachineModel::host();
    let tuned = Optimizer::feature_guided(&machine).optimize(&a);
    println!(
        "{name}: classes {}, optimizations {}, setup {:.1} ms",
        tuned.classes(),
        tuned.variant(),
        tuned.prep_seconds * 1e3
    );
    let n = a.nrows();
    let b = vec![1.0f64; n];
    let mut x = vec![0.0f64; n];
    let m = Jacobi::new(&a);
    let kernel = tuned.kernel();
    let solver = option(args, "--solver").unwrap_or("bicgstab");
    let stats = match solver {
        "cg" => cg(&kernel, &b, &mut x, Some(&m), 1e-8, 10_000),
        "bicgstab" => bicgstab(&kernel, &b, &mut x, Some(&m), 1e-8, 10_000),
        "gmres" => gmres(&kernel, &b, &mut x, Some(&m), 30, 1e-8, 10_000),
        other => return Err(format!("unknown solver {other:?}")),
    };
    println!(
        "{solver}: {} iterations, relative residual {:.2e}, converged: {}",
        stats.iterations, stats.residual, stats.converged
    );
    Ok(())
}
