//! Quickstart: generate a sparse matrix, let the adaptive optimizer
//! pick optimizations for it, and run SpMV through the tuned kernel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use spmv_tune::prelude::*;

fn main() {
    // A mid-size FEM-like banded matrix (the paper's MB archetype).
    let a = spmv_tune::sparse::gen::banded(100_000, 24, 0.9, 42).expect("valid parameters");
    println!("matrix: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    // Describe the platform we care about. For the machine running
    // this example use `MachineModel::host()`; presets for the
    // paper's platforms (knc / knl / broadwell) are also available.
    let machine = MachineModel::host();

    // The feature-guided optimizer: extracts Table-2 structural
    // features and maps detected bottlenecks to optimizations.
    let optimizer = Optimizer::feature_guided(&machine);
    let tuned = optimizer.optimize(&a);
    println!(
        "detected bottlenecks: {}  ->  optimizations: {}  (setup {:.2} ms)",
        tuned.classes(),
        tuned.variant(),
        tuned.prep_seconds * 1e3
    );

    // Run y = A x through the tuned kernel and the plain baseline.
    let x = vec![1.0f64; a.ncols()];
    let mut y = vec![0.0f64; a.nrows()];

    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        tuned.kernel().run(&x, &mut y);
    }
    let t_tuned = t0.elapsed().as_secs_f64() / reps as f64;

    let baseline = spmv_tune::kernels::baseline::CsrKernel::baseline(&a, 1);
    let mut y_ref = vec![0.0f64; a.nrows()];
    let t0 = Instant::now();
    for _ in 0..reps {
        spmv_tune::kernels::variant::SpmvKernel::run(&baseline, &x, &mut y_ref);
    }
    let t_base = t0.elapsed().as_secs_f64() / reps as f64;

    let flops = 2.0 * a.nnz() as f64;
    println!(
        "baseline: {:.2} GFLOP/s   tuned: {:.2} GFLOP/s",
        flops / t_base / 1e9,
        flops / t_tuned / 1e9
    );
    println!(
        "(the optimizations target bandwidth/latency/imbalance bottlenecks of wide\n\
         multicores; on a machine with very few cores the baseline may already be\n\
         optimal and the tuned kernel can tie or lose — that is the paper's point\n\
         about architecture-adaptivity)"
    );

    // Correctness check against the serial reference.
    let mut y_serial = vec![0.0f64; a.nrows()];
    a.spmv(&x, &mut y_serial);
    let max_err = y.iter().zip(&y_serial).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
    println!("max |tuned - serial| = {max_err:.3e}");
    assert!(max_err < 1e-9);
}
