//! Graph-analytics scenario: PageRank by power iteration on a
//! scale-free web graph. Power iteration is SpMV in a loop over a
//! matrix with power-law structure — exactly the `ML + IMB` territory
//! the paper's optimizer targets on many-core machines.
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use spmv_tune::prelude::*;

/// Builds the column-stochastic transition matrix `P^T` of a random
/// web graph (rows: destination, cols: source), so that one PageRank
/// step is `rank = d * P^T rank + (1-d)/n`.
fn transition_matrix(n: usize, avg_deg: usize, seed: u64) -> Csr {
    let adj = spmv_tune::sparse::gen::powerlaw(n, avg_deg, 2.0, seed).expect("valid parameters");
    // Normalise each column of adj^T = each row of adj by out-degree:
    // work on the transpose so the SpMV aggregates incoming ranks.
    let out_deg: Vec<f64> = (0..n).map(|i| adj.row_nnz(i) as f64).collect();
    let t = adj.transpose();
    let (nr, nc, rowptr, colind, mut values) = t.into_raw();
    for (k, &src) in colind.iter().enumerate() {
        let d = out_deg[src as usize];
        values[k] = if d > 0.0 { 1.0 / d } else { 0.0 };
    }
    Csr::from_raw(nr, nc, rowptr, colind, values).expect("structure unchanged")
}

fn main() {
    let n = 200_000;
    let pt = transition_matrix(n, 8, 7);
    println!("web graph: {} pages, {} links", n, pt.nnz());

    // Tune SpMV for the transition matrix.
    let machine = MachineModel::host();
    let tuned = Optimizer::feature_guided(&machine).optimize(&pt);
    println!("optimizer: classes {}, optimizations {}", tuned.classes(), tuned.variant());

    // Power iteration.
    let damping = 0.85;
    let teleport = (1.0 - damping) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iters = 0;
    loop {
        tuned.kernel().run(&rank, &mut next);
        let mut delta = 0.0;
        for v in next.iter_mut() {
            *v = damping * *v + teleport;
        }
        // Renormalise (absorbs dangling-node mass).
        let s: f64 = next.iter().sum();
        for v in next.iter_mut() {
            *v /= s;
        }
        for (a, b) in rank.iter().zip(&next) {
            delta += (a - b).abs();
        }
        std::mem::swap(&mut rank, &mut next);
        iters += 1;
        if delta < 1e-9 || iters >= 200 {
            println!("converged after {iters} iterations (L1 delta {delta:.2e})");
            break;
        }
    }

    // Report the top pages.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| rank[j].partial_cmp(&rank[i]).expect("finite ranks"));
    println!("top 5 pages by rank:");
    for &i in order.iter().take(5) {
        println!("  page {i:>8}  rank {:.3e}", rank[i]);
    }
    let sum: f64 = rank.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "rank vector must stay stochastic, sum {sum}");
}
