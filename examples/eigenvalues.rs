//! Eigenvalue scenario: approximate the dominant eigenvalue of a
//! large sparse operator with the power method, running every
//! iteration's SpMV through the adaptive optimizer — the paper's
//! second motivating workload class next to linear solvers.
//!
//! ```sh
//! cargo run --release --example eigenvalues
//! ```

use spmv_tune::prelude::*;
use spmv_tune::solvers::power_method;

fn main() {
    // Spectral analysis of a 2-D Laplacian: the continuous limit has
    // spectral radius 8 for the 5-point stencil, so the discrete
    // dominant eigenvalue must approach (and never exceed) 8.
    let (nx, ny) = (250, 250);
    let a = spmv_tune::sparse::gen::stencil_2d(nx, ny).expect("valid grid");
    println!("Laplacian on a {nx}x{ny} grid: {} unknowns, {} nonzeros", a.nrows(), a.nnz());

    let machine = MachineModel::host();
    let tuned = Optimizer::feature_guided(&machine).optimize(&a);
    println!("optimizer: classes {}, optimizations {}", tuned.classes(), tuned.variant());

    let kernel = tuned.kernel();
    let result = power_method(&kernel, 1e-7, 50_000);
    println!(
        "power method: lambda_max ~= {:.6} after {} iterations (converged: {})",
        result.eigenvalue, result.iterations, result.converged
    );
    assert!(result.eigenvalue < 8.0, "5-point Laplacian spectrum is bounded by 8");
    assert!(result.eigenvalue > 7.9, "large grids approach the bound");

    // And a graph example: the spectral radius of a web-graph
    // adjacency matrix bounds its growth/epidemic threshold.
    let g = spmv_tune::sparse::gen::powerlaw(100_000, 8, 2.0, 5).expect("valid parameters");
    let tuned_g = Optimizer::feature_guided(&machine).optimize(&g);
    let kernel_g = tuned_g.kernel();
    let rg = power_method(&kernel_g, 1e-6, 20_000);
    println!(
        "web graph ({} nodes): spectral radius ~= {:.3} ({} iterations)",
        g.nrows(),
        rg.eigenvalue.abs(),
        rg.iterations
    );
}
