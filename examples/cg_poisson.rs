//! Scientific-computing scenario: solve a 2-D Poisson problem with
//! (preconditioned) Conjugate Gradient, driving SpMV through the
//! adaptive optimizer, and report how many solver iterations were
//! needed vs how many amortize the tuning overhead (the paper's
//! §IV-D argument).
//!
//! ```sh
//! cargo run --release --example cg_poisson
//! ```

use std::time::Instant;

use spmv_tune::prelude::*;
use spmv_tune::solvers::{cg, Jacobi};
use spmv_tune::tuner::amortize::{min_iterations, Amortization};

fn main() {
    // -Δu = f on a 300x300 grid.
    let a = spmv_tune::sparse::gen::stencil_2d(300, 300).expect("valid grid");
    let n = a.nrows();
    println!("Poisson system: {} unknowns, {} nonzeros", n, a.nnz());

    // Manufactured solution so we can verify the solve.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.25 - 2.0).collect();
    let mut b = vec![0.0; n];
    a.spmv(&x_true, &mut b);

    // Tune SpMV for this matrix on the host.
    let machine = MachineModel::host();
    let optimizer = Optimizer::feature_guided(&machine);
    let tuned = optimizer.optimize(&a);
    println!(
        "optimizer: classes {}, optimizations {}, setup {:.2} ms",
        tuned.classes(),
        tuned.variant(),
        tuned.prep_seconds * 1e3
    );

    // Solve with the tuned kernel as the operator.
    let m = Jacobi::new(&a);
    let mut x = vec![0.0; n];
    let kernel = tuned.kernel();
    let t0 = Instant::now();
    let stats = cg(&kernel, &b, &mut x, Some(&m), 1e-10, 5_000);
    let t_tuned_solve = t0.elapsed().as_secs_f64();
    println!(
        "PCG(Jacobi): {} iterations, relative residual {:.2e}, {:.1} ms",
        stats.iterations,
        stats.residual,
        t_tuned_solve * 1e3
    );
    assert!(stats.converged, "solver failed to converge");

    let max_err = x.iter().zip(&x_true).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
    println!("max |x - x_true| = {max_err:.3e}");

    // Amortization: time one baseline SpMV vs one tuned SpMV.
    let xv = vec![1.0; n];
    let mut yv = vec![0.0; n];
    let time_kernel = |k: &dyn spmv_tune::kernels::variant::SpmvKernel, yv: &mut Vec<f64>| {
        let reps = 10;
        let t0 = Instant::now();
        for _ in 0..reps {
            k.run(&xv, yv);
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    let baseline = spmv_tune::kernels::baseline::CsrKernel::baseline(&a, 1);
    let t_base = time_kernel(&baseline, &mut yv);
    let t_tuned = time_kernel(tuned.kernel(), &mut yv);
    match min_iterations(tuned.prep_seconds, t_base, t_tuned) {
        Amortization::After(k) => println!(
            "tuning amortizes after {k} solver iterations (this solve used {})",
            stats.iterations
        ),
        Amortization::Never => println!(
            "tuned kernel not faster than baseline on this host; tuning does not amortize \
             (expected on machines with few cores, where the baseline is already optimal)"
        ),
    }
}
