//! Cross-platform bottleneck report: classify a few representative
//! matrices on all three paper platforms (simulated) and show how the
//! same matrix hits different bottlenecks on different machines —
//! the paper's core motivation for architecture-adaptive tuning.
//!
//! ```sh
//! cargo run --release --example bottleneck_report
//! ```

use spmv_tune::prelude::*;
use spmv_tune::sim::bounds::collect_bounds;
use spmv_tune::sim::cost::CostModel;
use spmv_tune::sim::profile::MatrixProfile;
use spmv_tune::tuner::profile::ProfileClassifier;

fn main() {
    // Three structurally different matrices (reduced sizes so the
    // example runs in seconds).
    let matrices = vec![
        ("fem-band (consph-like)", spmv_tune::sparse::gen::banded(60_000, 40, 0.9, 1).unwrap()),
        (
            "irregular (poisson3Db-like)",
            spmv_tune::sparse::gen::banded(80_000, 2_500, 0.006, 2).unwrap(),
        ),
        ("circuit (rajat30-like)", spmv_tune::sparse::gen::circuit(150_000, 5, 0.3, 8, 3).unwrap()),
        ("web graph (flickr-like)", spmv_tune::sparse::gen::powerlaw(120_000, 12, 1.7, 4).unwrap()),
    ];

    let classifier = ProfileClassifier::default();
    println!(
        "{:<28} {:<12} {:>8} {:>8} {:>8} {:>8} {:>8}   classes -> optimizations",
        "matrix", "platform", "P_CSR", "P_ML", "P_IMB", "P_CMP", "P_MB"
    );
    for (name, a) in &matrices {
        for machine in MachineModel::paper_platforms() {
            let model = CostModel::new(machine.clone());
            let profile = MatrixProfile::analyze(a, &machine);
            let bounds = collect_bounds(&model, &profile);
            let classes = classifier.classify(&bounds);
            let features = FeatureVector::extract(a, machine.llc_bytes(), machine.line_elems());
            let variant = classes.to_variant(&features);
            println!(
                "{:<28} {:<12} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   {} -> {}",
                name,
                machine.name,
                bounds.p_csr,
                bounds.p_ml,
                bounds.p_imb,
                bounds.p_cmp,
                bounds.p_mb,
                classes,
                variant
            );
        }
        println!();
    }
    println!(
        "note: numbers are simulated GFLOP/s from the spmv-sim cost model;\n\
         the point is the *diversity*: the same matrix lands in different\n\
         classes on different platforms, so one static optimization cannot win."
    );
}
